"""Seeded, grammar-driven mini-C program generator.

The generator builds a small structured program model (:class:`GeneratedCase`)
and renders it to mini-C source plus the :class:`AnnotationSet` the WCET
analyzer needs.  Keeping the structured form around (instead of only source
text) is what makes the delta-debugging shrinker practical: transformations
remove statements or functions from the model and re-render, so loop-bound
annotations — which reference ``loop_<line>`` labels — are recomputed from the
new line numbers instead of going stale.

Every generated program is, by construction:

* **well typed** — only ``int`` scalars, ``int`` arrays and ``int *``
  parameters are emitted, and every name is declared before use;
* **terminating** — all loops are counter loops with constant bounds (or
  annotated goto cycles with constant trip counts) and all calls go strictly
  "downward" in the function list, except opt-in recursive helpers whose
  depth is bounded by construction and declared via a ``recursion``
  annotation;
* **memory safe** — array indices are either constants below the array length
  or loop counters whose bound does not exceed the array length (or inputs
  masked with ``& (len - 1)``);
* **analysable** — loops whose exit condition the value analysis may not see
  through (data-dependent ``break``) carry a loop-bound annotation that is
  correct by construction.

Inputs are modelled as dedicated global scalars/arrays with a declared value
range; the oracle enumerates concrete input vectors for them.  The feature mix
(:class:`FeatureMix`) makes the grammar configurable: probabilities and limits
for conditionals, loop kinds, call depth, arrays, pointer writes, annotated
loops, and masked input-dependent indexing.

Three grammar regions target the engine's special-cased hard spots and are
**off by default** (so historical seeds render byte-identically) — the fuzz
fleet (:mod:`repro.testing.fuzz`) rotates presets that switch them on:

* ``allow_recursion`` — self-recursive helpers with a constant depth cap,
  declared via a ``recursion`` annotation (the analyzer's
  recursive-component path, which is excluded from the summary cache);
* ``allow_goto_loops`` — irreducible two-entry goto cycles bounded only by
  a label-anchored ``loopbound`` annotation (the IPET's non-canonical-header
  path);
* ``allow_function_pointers`` — indirect calls through ``int *`` handler
  variables; :func:`render_case` compiles the rendered source to discover
  the ``icall`` instruction addresses and emits the matching ``calltargets``
  control-flow hints (the strict CFG reconstruction path).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.annotations import AnnotationSet

#: Length of every generated input/state array (a power of two so masked
#: input-dependent indices are in bounds by construction).
ARRAY_LENGTH = 8


# --------------------------------------------------------------------------- #
# Program model
# --------------------------------------------------------------------------- #
@dataclass
class GlobalVar:
    """One global variable of the generated program.

    ``length`` is ``None`` for scalars.  ``is_input`` marks the variable as an
    oracle input: its initial contents are enumerated per run within
    ``[low, high]``.  Non-input globals start at ``initial``.
    """

    name: str
    length: Optional[int] = None
    initial: int = 0
    is_input: bool = False
    low: int = -8
    high: int = 8


@dataclass
class SAssign:
    """``lhs = expr;`` — lhs is a scalar name or an array element."""

    lhs: str
    expr: str


@dataclass
class SIf:
    cond: str
    then: List["Stmt"] = field(default_factory=list)
    els: List["Stmt"] = field(default_factory=list)


@dataclass
class SFor:
    """``for (var = 0; var < bound; var = var + 1) { body }``.

    ``annotate`` optionally carries an explicit loop-bound annotation (the
    declared bound); the automatic loop-bound analysis finds counter loops on
    its own, so most for loops leave it ``None``.
    """

    var: str
    bound: int
    body: List["Stmt"] = field(default_factory=list)
    annotate: Optional[int] = None


@dataclass
class SWhileBreak:
    """An annotated while loop with an optional data-dependent early exit::

        while (var < bound) {
            <body>
            if (<break_cond>) { break; }
            var = var + 1;
        }

    ``annotate`` is the declared iteration bound emitted as a ``loopbound``
    annotation.  A *correct* declaration equals ``bound``; the known-bad
    program used to validate the shrinker deliberately declares less.
    """

    var: str
    bound: int
    body: List["Stmt"] = field(default_factory=list)
    break_cond: Optional[str] = None
    annotate: Optional[int] = None


@dataclass
class SCall:
    """``lhs = callee(args);`` or a bare ``callee(args);`` when lhs is None."""

    callee: str
    args: List[str] = field(default_factory=list)
    lhs: Optional[str] = None


@dataclass
class SReturn:
    expr: str


@dataclass
class SGotoLoop:
    """An irreducible two-entry goto cycle (the corpus ``goto mid`` idiom)::

        <var> = 0;
        goto gl<uid>_mid;
    gl<uid>_top:
        <body>
    gl<uid>_mid:
        <var> = <var> + 1;
        if (<var> < <bound>) {
            goto gl<uid>_top;
        }

    The cycle is entered at ``mid`` (never at ``top``), so the loop's
    canonical header has no external predecessor — the exact shape that once
    degenerated the IPET loop-bound constraint to ``back edges <= 0``
    (corpus seed ``adversarial-irreducible-goto-loop``).  The automatic
    loop-bound analysis cannot see through the gotos; a ``loopbound``
    annotation anchored on the *label* (``fn.gl<uid>_top``) bounds it.
    Labels are derived from ``uid``, not line numbers, so shrinking a case
    never stales them.  ``body`` executes ``bound - 1`` times; ``annotate``
    (>= bound - 1 back edges) is emitted as the loop-bound annotation.
    """

    uid: int
    var: str
    bound: int
    body: List["Stmt"] = field(default_factory=list)
    annotate: int = 1


@dataclass
class SFnPtrCall:
    """An indirect call through a function-pointer variable::

        int *fp<uid> = &<primary>;
        if (<cond>) {
            fp<uid> = &<alternate>;
        }
        <lhs> = fp<uid>();

    Compiles to an ``icall`` instruction; :func:`render_case` discovers its
    address post-compile and emits the matching ``calltargets`` hint with
    ``{primary, alternate}`` as the candidate set (strict CFG reconstruction
    refuses unhinted indirect calls).  ``alternate``/``cond`` are optional —
    ``None`` renders a single-target pointer call.
    """

    uid: int
    primary: str
    lhs: str
    alternate: Optional[str] = None
    cond: Optional[str] = None

    def targets(self) -> Tuple[str, ...]:
        if self.alternate is not None and self.alternate != self.primary:
            return (self.primary, self.alternate)
        return (self.primary,)


Stmt = Union[SAssign, SIf, SFor, SWhileBreak, SCall, SReturn, SGotoLoop, SFnPtrCall]


@dataclass
class Param:
    name: str
    is_pointer: bool = False


@dataclass
class GFunction:
    name: str
    params: List[Param] = field(default_factory=list)
    locals_: List[Tuple[str, str]] = field(default_factory=list)  # (name, init expr)
    body: List[Stmt] = field(default_factory=list)
    return_expr: str = "0"
    returns_void: bool = False
    #: Inclusive value range of each scalar argument at every generated call
    #: site; rendered as an ``argrange`` annotation when set.
    arg_ranges: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: Set on self-recursive helpers: the maximum number of activations one
    #: outer call can cause (depth cap + 1).  Rendered as a ``recursion``
    #: annotation; call sites only ever pass constant arguments inside
    #: ``arg_ranges``, so the declared depth holds by construction.
    recursion_depth: Optional[int] = None


@dataclass
class GeneratedCase:
    """One generated program: globals + functions (entry last) + metadata."""

    name: str
    seed: int
    globals_: List[GlobalVar] = field(default_factory=list)
    functions: List[GFunction] = field(default_factory=list)
    entry: str = "main"
    max_steps: int = 2_000_000
    notes: str = ""

    def input_variables(self) -> List[GlobalVar]:
        return [g for g in self.globals_ if g.is_input]

    def function(self, name: str) -> GFunction:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(name)


@dataclass
class RenderedCase:
    """The source text and annotations obtained from one program model."""

    source: str
    annotations: AnnotationSet
    line_count: int


# --------------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------------- #
class _Emitter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        #: Function-pointer call sites in emission order; each entry is the
        #: candidate-target tuple of one ``icall``-to-be.
        self.fnptr_sites: List[Tuple[str, ...]] = []

    @property
    def next_line(self) -> int:
        return len(self.lines) + 1

    def emit(self, indent: int, text: str) -> int:
        self.lines.append("    " * indent + text)
        return len(self.lines)


def _attach_call_target_hints(
    source: str, annotations: AnnotationSet, sites: List[Tuple[str, ...]]
) -> None:
    """Resolve the rendered function-pointer call sites to ``icall`` addresses.

    ``calltargets`` hints are keyed by instruction *address*, which only
    exists after compilation and layout.  Layout is deterministic and does
    not depend on annotations, so compiling the rendered source once here
    yields the final addresses: the Nth ``icall`` in address order is the Nth
    function-pointer site in emission order (functions are laid out in
    source order, statements in source order within them).  A source the
    compiler rejects gets no hints — the oracle reports the compile error
    itself.
    """
    from repro.minic import compile_source

    try:
        program = compile_source(source)
    except Exception:  # noqa: BLE001 - the oracle owns compile diagnostics
        return
    addresses = sorted(
        instruction.address
        for function in program.functions.values()
        for instruction in function.instructions
        if instruction.opcode.value == "icall"
    )
    if len(addresses) != len(sites):
        return
    for address, targets in zip(addresses, sites):
        annotations.add_call_targets(address, targets)


def render_case(case: GeneratedCase) -> RenderedCase:
    """Render the program model to mini-C source and its annotation set."""
    emitter = _Emitter()
    annotations = AnnotationSet()

    for var in case.globals_:
        if var.length is not None:
            emitter.emit(0, f"int {var.name}[{var.length}];")
        elif var.initial:
            emitter.emit(0, f"int {var.name} = {var.initial};")
        else:
            emitter.emit(0, f"int {var.name};")

    for function in case.functions:
        params = ", ".join(
            (f"int *{p.name}" if p.is_pointer else f"int {p.name}")
            for p in function.params
        ) or "void"
        return_type = "void" if function.returns_void else "int"
        emitter.emit(0, f"{return_type} {function.name}({params}) {{")
        for name, init in function.locals_:
            emitter.emit(1, f"int {name} = {init};")
        _render_block(emitter, annotations, function, function.body, 1)
        if not function.returns_void:
            emitter.emit(1, f"return {function.return_expr};")
        emitter.emit(0, "}")
        for position, (low, high) in enumerate(
            function.arg_ranges.get(p.name, (None, None))
            for p in function.params
        ):
            if low is not None:
                annotations.add_argument_range(function.name, f"r{3 + position}", low, high)
        if function.recursion_depth is not None:
            annotations.add_recursion_bound(function.name, function.recursion_depth)

    source = "\n".join(emitter.lines) + "\n"
    if emitter.fnptr_sites:
        _attach_call_target_hints(source, annotations, emitter.fnptr_sites)
    return RenderedCase(
        source=source, annotations=annotations, line_count=len(emitter.lines)
    )


def _render_block(
    emitter: _Emitter,
    annotations: AnnotationSet,
    function: GFunction,
    stmts: Sequence[Stmt],
    indent: int,
) -> None:
    for stmt in stmts:
        _render_stmt(emitter, annotations, function, stmt, indent)


def _render_stmt(
    emitter: _Emitter,
    annotations: AnnotationSet,
    function: GFunction,
    stmt: Stmt,
    indent: int,
) -> None:
    if isinstance(stmt, SAssign):
        emitter.emit(indent, f"{stmt.lhs} = {stmt.expr};")
        return
    if isinstance(stmt, SIf):
        emitter.emit(indent, f"if ({stmt.cond}) {{")
        _render_block(emitter, annotations, function, stmt.then, indent + 1)
        if stmt.els:
            emitter.emit(indent, "} else {")
            _render_block(emitter, annotations, function, stmt.els, indent + 1)
        emitter.emit(indent, "}")
        return
    if isinstance(stmt, SFor):
        line = emitter.emit(
            indent,
            f"for ({stmt.var} = 0; {stmt.var} < {stmt.bound}; "
            f"{stmt.var} = {stmt.var} + 1) {{",
        )
        if stmt.annotate is not None:
            annotations.add_loop_bound(function.name, f"loop_{line}", stmt.annotate)
        _render_block(emitter, annotations, function, stmt.body, indent + 1)
        emitter.emit(indent, "}")
        return
    if isinstance(stmt, SWhileBreak):
        emitter.emit(indent, f"{stmt.var} = 0;")
        line = emitter.emit(indent, f"while ({stmt.var} < {stmt.bound}) {{")
        if stmt.annotate is not None:
            annotations.add_loop_bound(function.name, f"loop_{line}", stmt.annotate)
        _render_block(emitter, annotations, function, stmt.body, indent + 1)
        if stmt.break_cond is not None:
            emitter.emit(indent + 1, f"if ({stmt.break_cond}) {{")
            emitter.emit(indent + 2, "break;")
            emitter.emit(indent + 1, "}")
        emitter.emit(indent + 1, f"{stmt.var} = {stmt.var} + 1;")
        emitter.emit(indent, "}")
        return
    if isinstance(stmt, SCall):
        call = f"{stmt.callee}({', '.join(stmt.args)})"
        if stmt.lhs is not None:
            emitter.emit(indent, f"{stmt.lhs} = {call};")
        else:
            emitter.emit(indent, f"{call};")
        return
    if isinstance(stmt, SReturn):
        emitter.emit(indent, f"return {stmt.expr};")
        return
    if isinstance(stmt, SGotoLoop):
        top = f"gl{stmt.uid}_top"
        mid = f"gl{stmt.uid}_mid"
        emitter.emit(indent, f"{stmt.var} = 0;")
        emitter.emit(indent, f"goto {mid};")
        emitter.emit(0, f"{top}:")
        annotations.add_loop_bound(function.name, top, stmt.annotate)
        _render_block(emitter, annotations, function, stmt.body, indent)
        emitter.emit(0, f"{mid}:")
        emitter.emit(indent, f"{stmt.var} = {stmt.var} + 1;")
        emitter.emit(indent, f"if ({stmt.var} < {stmt.bound}) {{")
        emitter.emit(indent + 1, f"goto {top};")
        emitter.emit(indent, "}")
        return
    if isinstance(stmt, SFnPtrCall):
        # Wrapped in its own block: a declaration is not a labelled-statement
        # in mini-C, and this node may render directly after a goto label.
        pointer = f"fp{stmt.uid}"
        emitter.emit(indent, "{")
        emitter.emit(indent + 1, f"int *{pointer} = &{stmt.primary};")
        if stmt.alternate is not None and stmt.cond is not None:
            emitter.emit(indent + 1, f"if ({stmt.cond}) {{")
            emitter.emit(indent + 2, f"{pointer} = &{stmt.alternate};")
            emitter.emit(indent + 1, "}")
        emitter.emit(indent + 1, f"{stmt.lhs} = {pointer}();")
        emitter.emit(indent, "}")
        emitter.fnptr_sites.append(stmt.targets())
        return
    raise TypeError(f"unknown statement node {type(stmt).__name__}")


# --------------------------------------------------------------------------- #
# Feature mix
# --------------------------------------------------------------------------- #
@dataclass
class FeatureMix:
    """Probabilities and limits steering the grammar."""

    #: Helper functions besides main (callees of main and of each other).
    max_helpers: int = 3
    max_params: int = 3
    max_stmts: int = 5            # statements per block
    max_depth: int = 3            # nesting depth of if/for/while
    max_expr_depth: int = 2
    max_loop_bound: int = 8
    max_locals: int = 5
    input_scalars: int = 2
    input_arrays: int = 1
    state_scalars: int = 2
    state_arrays: int = 1

    p_if: float = 0.22
    p_for: float = 0.18
    p_while_break: float = 0.10
    p_call: float = 0.18
    p_array_store: float = 0.15
    p_pointer_write: float = 0.10
    p_else: float = 0.5
    p_annotate_for: float = 0.2
    p_masked_input_index: float = 0.15
    p_compare_chain: float = 0.3

    allow_calls: bool = True
    allow_pointers: bool = True
    allow_arrays: bool = True
    allow_while_break: bool = True
    allow_division: bool = True

    # ---- engine hard-spot regions (off by default: historical seeds must
    # render byte-identically; the fuzz fleet rotates presets that enable
    # them — see repro.testing.fuzz) ------------------------------------- #
    #: Self-recursive helpers with a constant depth cap and a ``recursion``
    #: annotation (exercises the recursive-component analysis, which is
    #: excluded from the summary cache).
    allow_recursion: bool = False
    max_recursive_helpers: int = 1
    #: Maximum argument value passed to a recursive helper (activations per
    #: outer call are capped at this + 1).
    max_recursion_depth: int = 4
    #: Irreducible two-entry goto cycles bounded only by a label-anchored
    #: ``loopbound`` annotation (exercises the IPET's non-canonical-header
    #: constraint anchoring).  Generated at nesting depth 0 only.
    allow_goto_loops: bool = False
    p_goto_loop: float = 0.10
    #: Indirect calls through function-pointer variables, resolved by
    #: ``calltargets`` hints discovered at render time (exercises strict CFG
    #: reconstruction of ``icall``).
    allow_function_pointers: bool = False
    p_fnptr_call: float = 0.10
    fnptr_handlers: int = 2

    #: Cap on the *estimated dynamic step count* of any single function
    #: (loops multiply, calls add the callee's estimate).  Without this,
    #: nested loops around nested calls compose multiplicatively and a
    #: single seed can take millions of interpreter steps; the generator
    #: vetoes calls that would blow the budget and emits a plain assignment
    #: instead, keeping every generated program cheap to replay.
    max_dynamic_cost: int = 40_000

    def scaled_for_depth(self, depth: int) -> "FeatureMix":
        """Damp structure probabilities as nesting grows."""
        factor = 0.5 ** depth
        return replace(
            self,
            p_if=self.p_if * factor,
            p_for=self.p_for * factor,
            p_while_break=self.p_while_break * factor,
        )


#: Arithmetic operators usable between arbitrary int expressions.
_ARITH_OPS = ("+", "-", "*", "&", "|", "^")
_COMPARE_OPS = ("<", "<=", ">", ">=", "==", "!=")
#: Divisors/moduli — strictly positive constants so execution never traps.
_DIVISORS = (2, 3, 4, 5, 7)


# --------------------------------------------------------------------------- #
# Generator
# --------------------------------------------------------------------------- #
class ProgramGenerator:
    """Generates one :class:`GeneratedCase` per seed, deterministically."""

    #: Rough interpreter-step costs of generated constructs (calibration for
    #: the dynamic-cost budget; deliberately pessimistic).
    _STMT_COST = 10
    _LOOP_ITERATION_COST = 8
    _CALL_OVERHEAD = 40

    def __init__(self, seed: int, mix: Optional[FeatureMix] = None):
        self.seed = seed
        self.mix = mix or FeatureMix()
        self.rng = random.Random(seed)
        #: Estimated dynamic step cost of each finished function.
        self._costs: Dict[str, int] = {}
        #: Model-stable uid counters for label/pointer names (not line
        #: numbers, so shrinking never stales them).
        self._goto_uid = 0
        self._fnptr_uid = 0

    # ------------------------------------------------------------------ #
    def generate(self) -> GeneratedCase:
        rng = self.rng
        mix = self.mix
        case = GeneratedCase(name=f"gen_{self.seed}", seed=self.seed)

        for index in range(mix.input_scalars):
            case.globals_.append(
                GlobalVar(name=f"in{index}", is_input=True, low=-8, high=8)
            )
        for index in range(mix.input_arrays):
            case.globals_.append(
                GlobalVar(
                    name=f"inbuf{index}",
                    length=ARRAY_LENGTH,
                    is_input=True,
                    low=-8,
                    high=8,
                )
            )
        for index in range(mix.state_scalars):
            case.globals_.append(
                GlobalVar(name=f"g{index}", initial=rng.randint(-4, 4))
            )
        for index in range(mix.state_arrays):
            case.globals_.append(GlobalVar(name=f"sbuf{index}", length=ARRAY_LENGTH))

        if mix.allow_pointers:
            case.functions.append(self._pointer_write_helper())
        if mix.allow_function_pointers:
            for index in range(mix.fnptr_handlers):
                case.functions.append(self._handler_function(index))

        num_helpers = rng.randint(0, mix.max_helpers) if mix.allow_calls else 0
        for index in range(num_helpers):
            case.functions.append(self._generate_helper(case, index))
        if mix.allow_recursion:
            for index in range(rng.randint(1, mix.max_recursive_helpers)):
                case.functions.append(self._recursive_helper(index))
        case.functions.append(self._generate_main(case))
        # Generous interpreter budget relative to the estimate: a real
        # divergence still trips it, a merely-large program does not.
        case.max_steps = max(200_000, self._costs.get("main", 0) * 10)
        return case

    # ------------------------------------------------------------------ #
    def _pointer_write_helper(self) -> GFunction:
        """``void pw(int *p, int v) { *p = *p + v; }`` — the aliasing probe."""
        self._costs["pw"] = 40
        return GFunction(
            name="pw",
            params=[Param("p", is_pointer=True), Param("v")],
            body=[SAssign("*p", "*p + v")],
            returns_void=True,
        )

    def _handler_function(self, index: int) -> GFunction:
        """A zero-argument event handler reachable only through ``icall``."""
        rng = self.rng
        name = f"h{index}"
        function = GFunction(name=name, params=[])
        function.locals_ = [("t", str(rng.randint(-4, 4)))]
        function.body = [
            SAssign("t", f"(t * {rng.randint(2, 5)}) + {rng.randint(-3, 3)}")
        ]
        function.return_expr = "t"
        self._costs[name] = self._CALL_OVERHEAD + 2 * self._STMT_COST
        return function

    def _recursive_helper(self, index: int) -> GFunction:
        """``int rcN(int n)`` calling itself on ``n - 1`` while ``n > 0``.

        Generated call sites only ever pass constants in ``[0, depth_cap]``,
        so one outer call causes at most ``depth_cap + 1`` activations — the
        value declared via the ``recursion`` annotation
        (:attr:`GFunction.recursion_depth`).  The ``argrange`` annotation
        covers every concrete argument (the recursion decrements toward 0).
        """
        rng = self.rng
        name = f"rc{index}"
        depth_cap = rng.randint(1, max(self.mix.max_recursion_depth, 1))
        function = GFunction(
            name=name,
            params=[Param("n")],
            recursion_depth=depth_cap + 1,
        )
        function.arg_ranges["n"] = (0, depth_cap)
        function.locals_ = [("t", str(rng.randint(1, 4)))]
        function.body = [
            SAssign("t", "t + n"),
            SIf(
                cond="n > 0",
                then=[SCall(callee=name, args=["n - 1"], lhs="t")],
            ),
            SAssign("t", f"t + {rng.randint(0, 3)}"),
        ]
        function.return_expr = "t"
        self._costs[name] = (depth_cap + 1) * (
            3 * self._STMT_COST + self._CALL_OVERHEAD
        )
        return function

    # ------------------------------------------------------------------ #
    def _generate_helper(self, case: GeneratedCase, index: int) -> GFunction:
        rng = self.rng
        mix = self.mix
        num_params = rng.randint(1, mix.max_params)
        params = [Param(f"a{i}") for i in range(num_params)]
        function = GFunction(name=f"f{index}", params=params)
        # Scalar arguments are always generated within this range; declaring it
        # lets the context-insensitive analysis bound argument-driven loops.
        for param in params:
            function.arg_ranges[param.name] = (-16, 16)
        self._fill_function(case, function, callees=self._callees(case, index))
        return function

    def _generate_main(self, case: GeneratedCase) -> GFunction:
        function = GFunction(name="main", params=[])
        callees = self._callees(case, len(case.functions))
        # Recursive helpers are only ever called from main: one predictable
        # layer between the entry and the cycle keeps the cost model simple.
        callees += [f for f in case.functions if f.recursion_depth is not None]
        self._fill_function(case, function, callees=callees)
        return function

    def _callees(self, case: GeneratedCase, index: int) -> List[GFunction]:
        """Helpers a function may call: only ones generated before it."""
        return [f for f in case.functions if f.name.startswith("f")][:index]

    # ------------------------------------------------------------------ #
    def _fill_function(
        self, case: GeneratedCase, function: GFunction, callees: List[GFunction]
    ) -> None:
        rng = self.rng
        mix = self.mix
        num_locals = rng.randint(1, mix.max_locals)
        for i in range(num_locals):
            function.locals_.append((f"v{i}", str(rng.randint(-4, 4))))

        scope = _Scope(
            case=case,
            function=function,
            callees=callees,
            fnptr_targets=[
                f.name for f in case.functions if f.name.startswith("h")
            ],
        )
        function.body = self._generate_block(scope, depth=0)
        function.return_expr = self._expr(scope, mix.max_expr_depth)
        self._costs[function.name] = self._CALL_OVERHEAD + scope.estimate

    # ------------------------------------------------------------------ #
    def _generate_block(self, scope: "_Scope", depth: int) -> List[Stmt]:
        rng = self.rng
        mix = self.mix.scaled_for_depth(depth)
        stmts: List[Stmt] = []
        for _ in range(rng.randint(1, mix.max_stmts)):
            stmts.append(self._generate_stmt(scope, depth))
        return stmts

    def _generate_stmt(self, scope: "_Scope", depth: int) -> Stmt:
        rng = self.rng
        mix = self.mix.scaled_for_depth(depth)
        roll = rng.random()

        threshold = mix.p_if
        if roll < threshold and depth < self.mix.max_depth:
            return self._generate_if(scope, depth)
        threshold += mix.p_for
        if roll < threshold and depth < self.mix.max_depth:
            return self._generate_for(scope, depth)
        threshold += mix.p_while_break
        if (
            roll < threshold
            and depth < self.mix.max_depth
            and self.mix.allow_while_break
        ):
            return self._generate_while_break(scope, depth)
        if self.mix.allow_goto_loops and depth == 0:
            threshold += self.mix.p_goto_loop
            if roll < threshold:
                return self._generate_goto_loop(scope, depth)
        if self.mix.allow_function_pointers and scope.fnptr_targets:
            threshold += self.mix.p_fnptr_call
            if roll < threshold:
                call = self._generate_fnptr_call(scope)
                if call is not None:
                    return call
        threshold += mix.p_call
        if roll < threshold and scope.callees and self.mix.allow_calls:
            call = self._generate_call(scope)
            if call is not None:
                return call
        threshold += mix.p_array_store
        if roll < threshold and self.mix.allow_arrays:
            store = self._generate_array_store(scope)
            if store is not None:
                return store
        threshold += mix.p_pointer_write
        if roll < threshold and self.mix.allow_pointers:
            call = self._generate_pointer_write(scope)
            if call is not None:
                return call
        scope.charge(self._STMT_COST)
        return SAssign(lhs=scope.random_scalar_lvalue(rng), expr=self._expr(scope, self.mix.max_expr_depth))

    # ------------------------------------------------------------------ #
    def _generate_if(self, scope: "_Scope", depth: int) -> SIf:
        rng = self.rng
        scope.charge(self._STMT_COST)
        cond = self._condition(scope)
        then = self._generate_block(scope, depth + 1)
        els: List[Stmt] = []
        if rng.random() < self.mix.p_else:
            els = self._generate_block(scope, depth + 1)
        return SIf(cond=cond, then=then, els=els)

    def _generate_for(self, scope: "_Scope", depth: int) -> SFor:
        rng = self.rng
        var = scope.new_counter()
        bound = rng.randint(1, min(self.mix.max_loop_bound, ARRAY_LENGTH))
        annotate = bound if rng.random() < self.mix.p_annotate_for else None
        scope.push_counter(var, bound)
        scope.charge(self._LOOP_ITERATION_COST)
        body = self._generate_block(scope, depth + 1)
        scope.pop_counter()
        return SFor(var=var, bound=bound, body=body, annotate=annotate)

    def _generate_while_break(self, scope: "_Scope", depth: int) -> SWhileBreak:
        rng = self.rng
        var = scope.new_counter()
        bound = rng.randint(1, min(self.mix.max_loop_bound, ARRAY_LENGTH))
        scope.push_counter(var, bound)
        scope.charge(self._LOOP_ITERATION_COST)
        body = self._generate_block(scope, depth + 1)
        break_cond = self._condition(scope) if rng.random() < 0.7 else None
        scope.pop_counter()
        return SWhileBreak(
            var=var, bound=bound, body=body, break_cond=break_cond, annotate=bound
        )

    def _generate_goto_loop(self, scope: "_Scope", depth: int) -> SGotoLoop:
        rng = self.rng
        var = scope.new_counter()
        bound = rng.randint(2, min(self.mix.max_loop_bound, ARRAY_LENGTH))
        uid = self._goto_uid
        self._goto_uid += 1
        scope.push_counter(var, bound)
        scope.charge(self._LOOP_ITERATION_COST)
        body = self._generate_block(scope, depth + 1)
        scope.pop_counter()
        return SGotoLoop(uid=uid, var=var, bound=bound, body=body, annotate=bound)

    def _generate_fnptr_call(self, scope: "_Scope") -> Optional[SFnPtrCall]:
        rng = self.rng
        handlers = scope.fnptr_targets
        cost = self._CALL_OVERHEAD + max(
            self._costs.get(h, self._CALL_OVERHEAD) for h in handlers
        )
        if not scope.fits(cost, self.mix.max_dynamic_cost):
            return None
        scope.charge(cost)
        uid = self._fnptr_uid
        self._fnptr_uid += 1
        primary = rng.choice(handlers)
        alternate = None
        cond = None
        others = [h for h in handlers if h != primary]
        if others and rng.random() < 0.6:
            alternate = rng.choice(others)
            cond = self._condition(scope)
        return SFnPtrCall(
            uid=uid,
            primary=primary,
            lhs=scope.random_local(rng),
            alternate=alternate,
            cond=cond,
        )

    def _generate_call(self, scope: "_Scope") -> Optional[SCall]:
        rng = self.rng
        callee = rng.choice(scope.callees)
        cost = self._CALL_OVERHEAD + self._costs.get(callee.name, self._CALL_OVERHEAD)
        if not scope.fits(cost, self.mix.max_dynamic_cost):
            return None
        scope.charge(cost)
        args: List[str] = []
        for param in callee.params:
            low, high = callee.arg_ranges.get(param.name, (-4, 4))
            if callee.recursion_depth is not None:
                # The declared recursion depth assumes constant arguments
                # inside the annotated range — never an expression.
                args.append(str(rng.randint(low, high)))
            elif rng.random() < 0.5:
                args.append(str(rng.randint(low, high)))
            else:
                # A value expression clamped into the declared range by a
                # modulus: rem in (-d, d) stays inside [-16, 16] for d <= 16.
                divisor = rng.choice(_DIVISORS)
                args.append(f"({self._leaf(scope)}) % {divisor}")
        return SCall(callee=callee.name, args=args, lhs=scope.random_local(rng))

    def _generate_array_store(self, scope: "_Scope") -> Optional[SAssign]:
        rng = self.rng
        array = scope.random_array(rng)
        if array is None:
            return None
        scope.charge(self._STMT_COST)
        index = self._array_index(scope)
        return SAssign(
            lhs=f"{array.name}[{index}]", expr=self._expr(scope, self.mix.max_expr_depth)
        )

    def _generate_pointer_write(self, scope: "_Scope") -> Optional[SCall]:
        rng = self.rng
        cost = self._CALL_OVERHEAD + self._costs.get("pw", self._CALL_OVERHEAD)
        if not scope.fits(cost, self.mix.max_dynamic_cost):
            return None
        scope.charge(cost)
        targets: List[str] = [
            f"&{g.name}" for g in scope.case.globals_ if g.length is None
        ]
        array = scope.random_array(rng)
        if array is not None:
            targets.append(f"&{array.name}[{self._array_index(scope)}]")
        target = rng.choice(targets)
        return SCall(callee="pw", args=[target, self._expr(scope, 1)], lhs=None)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _array_index(self, scope: "_Scope") -> str:
        """An in-bounds index: a bounded counter, a constant, or a masked input."""
        rng = self.rng
        candidates: List[str] = [str(rng.randint(0, ARRAY_LENGTH - 1))]
        counter = scope.random_bounded_counter(rng, ARRAY_LENGTH)
        if counter is not None:
            candidates.append(counter)
            candidates.append(counter)   # favour loop counters
        if rng.random() < self.mix.p_masked_input_index:
            inputs = [g.name for g in scope.case.globals_ if g.is_input and g.length is None]
            if inputs:
                candidates.append(f"({rng.choice(inputs)} & {ARRAY_LENGTH - 1})")
        return rng.choice(candidates)

    def _leaf(self, scope: "_Scope") -> str:
        rng = self.rng
        choices: List[str] = [str(rng.randint(-8, 8))]
        choices.extend(scope.scalar_reads())
        array = scope.random_array(rng)
        if array is not None and self.mix.allow_arrays:
            choices.append(f"{array.name}[{self._array_index(scope)}]")
        return rng.choice(choices)

    def _expr(self, scope: "_Scope", depth: int) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.35:
            return self._leaf(scope)
        roll = rng.random()
        if roll < 0.12 and self.mix.allow_division:
            return f"({self._expr(scope, depth - 1)}) / {rng.choice(_DIVISORS)}"
        if roll < 0.24 and self.mix.allow_division:
            return f"({self._expr(scope, depth - 1)}) % {rng.choice(_DIVISORS)}"
        if roll < 0.32:
            return f"({self._expr(scope, depth - 1)}) >> {rng.randint(0, 3)}"
        if roll < 0.40:
            return f"({self._expr(scope, depth - 1)}) << {rng.randint(0, 3)}"
        if roll < 0.48:
            return f"-({self._expr(scope, depth - 1)})"
        op = rng.choice(_ARITH_OPS)
        return f"({self._expr(scope, depth - 1)} {op} {self._expr(scope, depth - 1)})"

    def _condition(self, scope: "_Scope") -> str:
        rng = self.rng
        left = self._expr(scope, 1)
        right = self._expr(scope, 1)
        cond = f"{left} {rng.choice(_COMPARE_OPS)} {right}"
        if rng.random() < self.mix.p_compare_chain:
            junction = rng.choice(("&&", "||"))
            third = f"{self._leaf(scope)} {rng.choice(_COMPARE_OPS)} {self._leaf(scope)}"
            cond = f"({cond}) {junction} ({third})"
        return cond


@dataclass
class _Scope:
    """Names visible while generating one function body."""

    case: GeneratedCase
    function: GFunction
    callees: List[GFunction]
    #: Handler functions callable through a function pointer (empty unless
    #: the mix enables function pointers).
    fnptr_targets: List[str] = field(default_factory=list)
    counters: List[Tuple[str, int]] = field(default_factory=list)
    counter_names: List[str] = field(default_factory=list)
    #: Estimated dynamic steps of the function body generated so far.
    estimate: int = 0
    #: Product of the bounds of the currently open loops.
    multiplier: int = 1
    #: Cap on distinct counters per function: together with max_locals and
    #: max_params this keeps every scalar local in a callee-saved home
    #: register, which the automatic loop-bound analysis depends on.
    max_counters: int = 6

    def new_counter(self) -> str:
        active = {name for name, _ in self.counters}
        if len(self.counter_names) >= self.max_counters:
            free = [name for name in self.counter_names if name not in active]
            if free:
                return free[0]
        name = f"i{len(self.counter_names)}"
        self.counter_names.append(name)
        self.function.locals_.append((name, "0"))
        return name

    def push_counter(self, name: str, bound: int) -> None:
        self.counters.append((name, bound))
        self.multiplier *= max(bound, 1)

    def pop_counter(self) -> None:
        _, bound = self.counters.pop()
        self.multiplier //= max(bound, 1)

    def charge(self, units: int) -> None:
        self.estimate += self.multiplier * units

    def fits(self, units: int, cap: int) -> bool:
        return self.estimate + self.multiplier * units <= cap

    def random_bounded_counter(self, rng: random.Random, limit: int) -> Optional[str]:
        eligible = [name for name, bound in self.counters if bound <= limit]
        return rng.choice(eligible) if eligible else None

    def _active_counters(self) -> set:
        return {name for name, _ in self.counters}

    def random_local(self, rng: random.Random) -> str:
        """A local that is safe to overwrite (never an active loop counter)."""
        active = self._active_counters()
        names = [name for name, _ in self.function.locals_ if name not in active]
        return rng.choice(names)

    def random_scalar_lvalue(self, rng: random.Random) -> str:
        active = self._active_counters()
        choices = [name for name, _ in self.function.locals_ if name not in active]
        choices.extend(g.name for g in self.case.globals_ if g.length is None and not g.is_input)
        return rng.choice(choices)

    def random_array(self, rng: random.Random) -> Optional[GlobalVar]:
        arrays = [g for g in self.case.globals_ if g.length is not None]
        return rng.choice(arrays) if arrays else None

    def scalar_reads(self) -> List[str]:
        """Every scalar name readable here (locals, params, globals, inputs)."""
        names = [name for name, _ in self.function.locals_]
        names.extend(p.name for p in self.function.params if not p.is_pointer)
        names.extend(g.name for g in self.case.globals_ if g.length is None)
        return names


# --------------------------------------------------------------------------- #
def generate_case(seed: int, mix: Optional[FeatureMix] = None) -> GeneratedCase:
    """Generate the program for one seed (deterministic)."""
    return ProgramGenerator(seed, mix=mix).generate()
