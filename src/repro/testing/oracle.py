"""Differential soundness oracle.

For one program (generated or from the corpus) the oracle:

1. compiles the mini-C source through the full static pipeline and runs the
   WCET analyzer (mini-C → IR → CFG → value/loop analysis → cache/pipeline →
   IPET), obtaining WCET and BCET bounds;
2. systematically enumerates concrete input vectors for the program's
   declared input globals;
3. replays the program in the concrete interpreter for every vector, times
   the trace with the concrete cache/pipeline simulator, and checks the
   soundness invariants:

   * ``BCET bound <= observed cycles <= WCET bound`` for every input,
   * no loop executes more often than its statically established bound,
   * no block the analysis reported unreachable is ever executed.

Any breach is reported as a :class:`Violation`; a compile/analysis/execution
crash is a violation too (kind ``compile-error`` / ``analysis-error`` /
``execution-error``), because the generator only emits programs the analyzer
claims to handle end to end.
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.summaries import SummaryCache
from repro.api import AnalysisService, Project
from repro.api import AnalysisRequest as ServiceRequest
from repro.cache import SummaryStore
from repro.errors import ReproError
from repro.hardware import TraceTimer
from repro.hardware.processor import ProcessorConfig, simple_scalar
from repro.ir import Interpreter
from repro.ir.program import Program
from repro.cfg.loops import find_loops
from repro.cfg.reconstruct import reconstruct_program
from repro.testing.generator import GeneratedCase, GlobalVar, render_case
from repro.wcet.report import WCETReport

#: Safety margin multiplier applied to the product-of-ancestor-bounds when
#: checking loop headers (header executes bound+1 times per entry).
_HEADER_SLACK = 1


@dataclass
class Violation:
    """One breached invariant for one program (and possibly one input)."""

    kind: str                     # e.g. "wcet-undercut", "loopbound-exceeded"
    message: str
    input_index: Optional[int] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" [input #{self.input_index}]" if self.input_index is not None else ""
        return f"{self.kind}{where}: {self.message}"


@dataclass
class RunOutcome:
    """Concrete replay of one input vector."""

    input_index: int
    initial_data: Dict[str, List[int]]
    observed_cycles: int
    return_value: int
    steps: int


@dataclass
class OracleResult:
    """Everything the oracle learned about one program."""

    case_name: str
    seed: Optional[int]
    wcet_cycles: int = 0
    bcet_cycles: int = 0
    runs: List[RunOutcome] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    report: Optional[WCETReport] = None
    source: str = ""
    #: Wall-clock seconds per oracle phase ("compile", "analyze", "execute",
    #: "check") — the raw material of the benchmark phase breakdowns.
    timings: Dict[str, float] = field(default_factory=dict)
    #: Function-summary cache counters of the analysis (tier1/tier2 hits and
    #: misses); all zero when no caching was in play.
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def violation_kinds(self) -> List[str]:
        return sorted({violation.kind for violation in self.violations})

    def summary(self) -> str:
        status = "SOUND" if self.ok else "VIOLATED " + ",".join(self.violation_kinds())
        return (
            f"{self.case_name}: {status} "
            f"(wcet={self.wcet_cycles}, bcet={self.bcet_cycles}, "
            f"runs={len(self.runs)})"
        )


@dataclass
class OracleConfig:
    """Knobs of one oracle sweep."""

    processor_factory: object = simple_scalar
    max_input_vectors: int = 6
    max_steps: int = 2_000_000
    check_loop_bounds: bool = True
    check_unreachable: bool = True
    #: Deterministic seed for the random tail of the input enumeration.
    input_seed: int = 0
    #: Directory of a persistent function-summary store shared by every
    #: worker of a sweep (``None`` disables tier-2 caching).  Purely a
    #: speed knob: cached and fresh analyses are bit-identical.
    cache_dir: Optional[str] = None
    #: Analysis options forwarded to the facade request (``None`` keeps the
    #: service defaults).  The fuzz driver uses this to probe non-default
    #: engine configurations, e.g. a tight ``max_contexts_per_function``.
    analysis_options: Optional[object] = None


#: Interesting scalar values probed first (clamped into the declared range).
_SCALAR_PROBES = (0, 1, -1)
#: Array fill patterns: (name, fill function over (index, low, high)).
_ARRAY_PATTERNS = (
    ("zeros", lambda i, lo, hi: 0),
    ("max", lambda i, lo, hi: hi),
    ("min", lambda i, lo, hi: lo),
    ("ramp", lambda i, lo, hi: lo + (i % (hi - lo + 1)) if hi > lo else lo),
    ("alternating", lambda i, lo, hi: hi if i % 2 == 0 else lo),
)


def enumerate_inputs(
    inputs: Sequence[GlobalVar], max_vectors: int, seed: int = 0
) -> List[Dict[str, List[int]]]:
    """Systematic input vectors: boundary probes first, seeded random tail.

    Returns ``initial_data`` maps for :meth:`Interpreter.run`.  Programs with
    no inputs get the single empty vector.
    """
    if not inputs:
        return [{}]

    rng = random.Random(seed)
    per_variable: List[List[List[int]]] = []
    for variable in inputs:
        low, high = variable.low, variable.high
        values: List[List[int]] = []
        if variable.length is None:
            candidates = [low, high]
            candidates += [v for v in _SCALAR_PROBES if low <= v <= high]
            seen = set()
            for value in candidates:
                if value not in seen:
                    seen.add(value)
                    values.append([value])
        else:
            for _, fill in _ARRAY_PATTERNS:
                values.append([fill(i, low, high) for i in range(variable.length)])
        per_variable.append(values)

    vectors: List[Dict[str, List[int]]] = []
    for combo in itertools.product(*per_variable):
        vectors.append(
            {variable.name: list(words) for variable, words in zip(inputs, combo)}
        )
        if len(vectors) >= max(max_vectors - 1, 1):
            break

    # Seeded random tail: fill the budget with uniform draws from the ranges.
    while len(vectors) < max_vectors:
        vector: Dict[str, List[int]] = {}
        for variable in inputs:
            length = variable.length or 1
            vector[variable.name] = [
                rng.randint(variable.low, variable.high) for _ in range(length)
            ]
        vectors.append(vector)
    return vectors


class DifferentialOracle:
    """Checks the soundness invariants of one program model."""

    def __init__(self, config: Optional[OracleConfig] = None):
        self.config = config or OracleConfig()
        # One store instance per oracle: workers of a sweep construct the
        # oracle once (pool initializer), so bucket pages read from disk are
        # shared across every case the worker checks.
        self._summary_store = (
            SummaryStore(self.config.cache_dir) if self.config.cache_dir else None
        )

    # ------------------------------------------------------------------ #
    def check(self, case) -> OracleResult:
        """Run the full differential check for one case.

        ``case`` is a :class:`~repro.testing.generator.GeneratedCase` or any
        object with the same duck-typed surface (``name``, ``seed``,
        ``entry``, ``max_steps``, ``input_variables()`` and either a model
        renderable by :func:`render_case` or its own ``rendered()`` method —
        corpus cases provide the latter).
        """
        result = OracleResult(case_name=case.name, seed=case.seed)

        if isinstance(case, GeneratedCase):
            rendered = render_case(case)
        else:
            rendered = case.rendered()
        result.source = rendered.source
        processor = self.config.processor_factory()
        # The oracle is a thin consumer of the repro.api facade; cache="off"
        # keeps its caching contract literal: cache_dir=None means *no*
        # tier-2 store, even when a process-global default store is
        # configured elsewhere — only the explicitly passed summary cache
        # (with this oracle's own store) is ever in play.
        project = Project.from_source(
            rendered.source,
            entry=case.entry,
            annotations=rendered.annotations,
            processor=processor,
            cache="off",
            name=case.name,
        )
        started = time.perf_counter()
        try:
            program = project.build()
        except ReproError as exc:
            result.violations.append(
                Violation(kind="compile-error", message=f"{type(exc).__name__}: {exc}")
            )
            return result
        finally:
            result.timings["compile"] = time.perf_counter() - started

        started = time.perf_counter()
        summary_cache = SummaryCache(store=self._summary_store)
        try:
            # Analyzer construction validates the program: an invalid Program
            # emitted by a compiler bug must surface as an analysis-error
            # violation, not crash the sweep.
            service = AnalysisService(project, summary_cache=summary_cache)
            request = ServiceRequest(entry=case.entry)
            if self.config.analysis_options is not None:
                request.options = self.config.analysis_options
            report = service.analyze(request).report
        except ReproError as exc:
            result.violations.append(
                Violation(kind="analysis-error", message=f"{type(exc).__name__}: {exc}")
            )
            return result
        finally:
            result.timings["analyze"] = time.perf_counter() - started
            result.cache_stats = summary_cache.stats()
        result.report = report
        result.wcet_cycles = report.wcet_cycles
        result.bcet_cycles = report.bcet_cycles

        vectors = enumerate_inputs(
            case.input_variables(),
            self.config.max_input_vectors,
            seed=self.config.input_seed,
        )
        max_steps = min(case.max_steps, self.config.max_steps)
        # One pre-decoded interpreter and one trace timer serve all vectors.
        interpreter = Interpreter(program, max_steps=max_steps)
        timer = TraceTimer(processor, program)
        # CFGs and loop forests depend only on the program; build them once
        # for all input vectors.
        structure = None
        if self.config.check_loop_bounds or self.config.check_unreachable:
            started = time.perf_counter()
            structure = self._build_structure(program, rendered.annotations)
            result.timings["check"] = time.perf_counter() - started
        for index, initial_data in enumerate(vectors):
            started = time.perf_counter()
            try:
                execution = interpreter.run(case.entry, initial_data=initial_data)
            except ReproError as exc:
                result.violations.append(
                    Violation(
                        kind="execution-error",
                        message=f"{type(exc).__name__}: {exc}",
                        input_index=index,
                    )
                )
                result.timings["execute"] = (
                    result.timings.get("execute", 0.0) + time.perf_counter() - started
                )
                continue
            observed = timer.time(execution.trace)
            result.timings["execute"] = (
                result.timings.get("execute", 0.0) + time.perf_counter() - started
            )
            result.runs.append(
                RunOutcome(
                    input_index=index,
                    initial_data=initial_data,
                    observed_cycles=observed.cycles,
                    return_value=execution.return_value,
                    steps=execution.steps,
                )
            )

            if observed.cycles > report.wcet_cycles:
                result.violations.append(
                    Violation(
                        kind="wcet-undercut",
                        message=(
                            f"observed {observed.cycles} cycles > WCET bound "
                            f"{report.wcet_cycles}"
                        ),
                        input_index=index,
                    )
                )
            if observed.cycles < report.bcet_cycles:
                result.violations.append(
                    Violation(
                        kind="bcet-overcut",
                        message=(
                            f"observed {observed.cycles} cycles < BCET bound "
                            f"{report.bcet_cycles}"
                        ),
                        input_index=index,
                    )
                )
            if structure is not None:
                started = time.perf_counter()
                self._check_structure(structure, report, execution, result, index)
                result.timings["check"] = (
                    result.timings.get("check", 0.0) + time.perf_counter() - started
                )
        return result

    # ------------------------------------------------------------------ #
    def _build_structure(self, program: Program, annotations):
        """CFG + loop forest per function, shared by all input vectors."""
        try:
            cfgs, _ = reconstruct_program(
                program, hints=annotations.control_flow_hints, strict=False
            )
        except ReproError:
            return None
        return {name: (cfg, find_loops(cfg)) for name, cfg in cfgs.items()}

    def _check_structure(self, structure, report, execution, result, index) -> None:
        """Loop-bound and unreachable-block checks against one trace."""
        block_counts = execution.trace.block_counts
        call_counts = execution.trace.call_counts

        for name, function_report in report.functions.items():
            if name not in structure:
                continue
            cfg, loops = structure[name]
            calls = call_counts.get(name, 0)
            if calls == 0:
                continue

            if self.config.check_unreachable:
                for block_id in function_report.unreachable_blocks:
                    if not cfg.has_block(block_id):
                        continue
                    executed = sum(
                        block_counts.get(address, 0)
                        for address in cfg.block(block_id).addresses()
                    )
                    if executed:
                        result.violations.append(
                            Violation(
                                kind="unreachable-executed",
                                message=(
                                    f"{name}: block {block_id:#x} reported "
                                    f"unreachable but executed {executed} times"
                                ),
                                input_index=index,
                            )
                        )

            if not self.config.check_loop_bounds:
                continue
            bound_by_header = {
                loop_report.header: loop_report.bound
                for loop_report in function_report.loop_reports
                if loop_report.bound is not None
            }
            for loop in loops.loops:
                bound = bound_by_header.get(loop.header)
                if bound is None:
                    continue
                # Each entry into the loop may execute the header bound+1
                # times (the final, failing condition check).  A bound counts
                # *back edges*; an enclosing loop's body — and with it the
                # entry point of this loop — can run bound+1 times when the
                # enclosing loop exits through a break, so entries multiply
                # by parent_bound + 1 per nesting level.
                entries = calls
                parent = loop.parent
                while parent is not None:
                    parent_bound = bound_by_header.get(parent)
                    if parent_bound is None:
                        entries = None
                        break
                    entries *= parent_bound + 1
                    parent_loop = loops.loop_with_header(parent)
                    parent = parent_loop.parent if parent_loop else None
                if entries is None:
                    continue
                limit = (bound + _HEADER_SLACK) * entries
                executed = block_counts.get(loop.header, 0)
                if executed > limit:
                    result.violations.append(
                        Violation(
                            kind="loopbound-exceeded",
                            message=(
                                f"{name}: loop {loop.header:#x} header executed "
                                f"{executed} times, statically bounded by "
                                f"{bound} iterations x {entries} entries"
                            ),
                            input_index=index,
                        )
                    )


# --------------------------------------------------------------------------- #
def check_case(
    case: GeneratedCase, config: Optional[OracleConfig] = None
) -> OracleResult:
    """Convenience wrapper: run the differential oracle on one case."""
    return DifferentialOracle(config).check(case)
