"""Delta-debugging shrinker for violating generated programs.

Works on the structured program model (:class:`GeneratedCase`), not on source
text: transformations remove statements, inline branches, shorten loops and
drop whole functions, then re-render — so line-number-based loop annotations
are recomputed and never go stale.  A candidate is kept only when the oracle
still reports a violation of the *same kind* as the original failure; this
stops the shrink from wandering to an unrelated failure (e.g. turning a
WCET undercut into a compile error by deleting a called function).

The algorithm is a greedy fixpoint over a candidate queue (classic ddmin
spirit, simplified): repeatedly try every applicable transformation, restart
whenever one sticks, stop when a full pass changes nothing or the check
budget is exhausted.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.testing.generator import (
    GeneratedCase,
    GFunction,
    SAssign,
    SCall,
    SFnPtrCall,
    SFor,
    SGotoLoop,
    SIf,
    SReturn,
    SWhileBreak,
    Stmt,
    render_case,
)
from repro.testing.oracle import DifferentialOracle, OracleConfig, OracleResult


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    case: GeneratedCase
    result: OracleResult
    line_count: int
    checks: int
    reductions: int


class Shrinker:
    """Minimises a violating case while preserving the violation kind."""

    def __init__(
        self,
        config: Optional[OracleConfig] = None,
        max_checks: int = 400,
    ):
        self.oracle = DifferentialOracle(config)
        self.max_checks = max_checks
        self.checks = 0

    # ------------------------------------------------------------------ #
    def shrink(self, case: GeneratedCase) -> ShrinkResult:
        """Shrink ``case``; it must currently fail the oracle."""
        baseline = self.oracle.check(case)
        if baseline.ok:
            raise ValueError(
                f"case {case.name!r} passes the oracle; nothing to shrink"
            )
        target_kinds = set(baseline.violation_kinds())
        self.checks = 1
        reductions = 0

        current = copy.deepcopy(case)
        progress = True
        while progress and self.checks < self.max_checks:
            progress = False
            for candidate in self._candidates(current):
                if self.checks >= self.max_checks:
                    break
                result = self.oracle.check(candidate)
                self.checks += 1
                if result.violations and target_kinds & set(result.violation_kinds()):
                    current = candidate
                    reductions += 1
                    progress = True
                    break   # restart candidate generation from the smaller case

        final_result = self.oracle.check(current)
        return ShrinkResult(
            case=current,
            result=final_result,
            line_count=render_case(current).line_count,
            checks=self.checks,
            reductions=reductions,
        )

    # ------------------------------------------------------------------ #
    # Candidate generation (ordered: big cuts first)
    # ------------------------------------------------------------------ #
    def _candidates(self, case: GeneratedCase):
        yield from self._drop_functions(case)
        yield from self._drop_statements(case)
        yield from self._inline_branches(case)
        yield from self._shorten_loops(case)
        yield from self._drop_locals(case)
        yield from self._drop_globals(case)
        yield from self._simplify_exprs(case)

    def _drop_functions(self, case: GeneratedCase):
        for index, function in enumerate(case.functions):
            if function.name == case.entry:
                continue
            candidate = copy.deepcopy(case)
            del candidate.functions[index]
            yield candidate   # invalid if still called — oracle rejects that

    def _drop_statements(self, case: GeneratedCase):
        for path in _statement_paths(case):
            candidate = copy.deepcopy(case)
            block = _resolve_block(candidate, path[:-1])
            del block[path[-1]]
            yield candidate

    def _inline_branches(self, case: GeneratedCase):
        for path in _statement_paths(case):
            stmt = _resolve_stmt(case, path)
            if isinstance(stmt, SIf):
                for branch in ("then", "els"):
                    body = getattr(stmt, branch)
                    if not body and branch == "els":
                        continue
                    candidate = copy.deepcopy(case)
                    block = _resolve_block(candidate, path[:-1])
                    block[path[-1] : path[-1] + 1] = copy.deepcopy(body)
                    yield candidate
            elif isinstance(stmt, (SFor, SWhileBreak, SGotoLoop)) and stmt.body:
                candidate = copy.deepcopy(case)
                _resolve_stmt(candidate, path).body = []
                yield candidate

    def _shorten_loops(self, case: GeneratedCase):
        for path in _statement_paths(case):
            stmt = _resolve_stmt(case, path)
            if isinstance(stmt, (SFor, SWhileBreak)) and stmt.bound > 1:
                candidate = copy.deepcopy(case)
                loop = _resolve_stmt(candidate, path)
                loop.bound = 1
                if isinstance(loop, SWhileBreak) and loop.annotate is not None:
                    loop.annotate = min(loop.annotate, 1)
                if isinstance(loop, SFor) and loop.annotate is not None:
                    loop.annotate = 1
                yield candidate
            if isinstance(stmt, SWhileBreak) and stmt.break_cond is not None:
                candidate = copy.deepcopy(case)
                _resolve_stmt(candidate, path).break_cond = None
                yield candidate
            if isinstance(stmt, SGotoLoop) and stmt.bound > 1:
                candidate = copy.deepcopy(case)
                loop = _resolve_stmt(candidate, path)
                loop.bound = 1
                loop.annotate = 1
                yield candidate
            if isinstance(stmt, SFnPtrCall) and stmt.alternate is not None:
                candidate = copy.deepcopy(case)
                call = _resolve_stmt(candidate, path)
                call.alternate = None
                call.cond = None
                yield candidate

    def _drop_locals(self, case: GeneratedCase):
        for findex, function in enumerate(case.functions):
            for lindex in range(len(function.locals_)):
                candidate = copy.deepcopy(case)
                del candidate.functions[findex].locals_[lindex]
                yield candidate   # invalid if the local is used — rejected

    def _drop_globals(self, case: GeneratedCase):
        for gindex in range(len(case.globals_)):
            candidate = copy.deepcopy(case)
            del candidate.globals_[gindex]
            yield candidate

    def _simplify_exprs(self, case: GeneratedCase):
        for path in _statement_paths(case):
            stmt = _resolve_stmt(case, path)
            if isinstance(stmt, SAssign) and stmt.expr not in ("0", "1"):
                candidate = copy.deepcopy(case)
                _resolve_stmt(candidate, path).expr = "0"
                yield candidate
        for findex, function in enumerate(case.functions):
            if function.return_expr not in ("0",) and not function.returns_void:
                candidate = copy.deepcopy(case)
                candidate.functions[findex].return_expr = "0"
                yield candidate


# --------------------------------------------------------------------------- #
# Statement addressing: a path is (function index, branch selectors..., index)
# --------------------------------------------------------------------------- #
def _blocks_of(stmt: Stmt) -> List[Tuple[str, List[Stmt]]]:
    if isinstance(stmt, SIf):
        return [("then", stmt.then), ("els", stmt.els)]
    if isinstance(stmt, (SFor, SWhileBreak, SGotoLoop)):
        return [("body", stmt.body)]
    return []


def _statement_paths(case: GeneratedCase) -> List[Tuple]:
    """Every statement position, as (findex, (sel, idx)..., idx) paths."""
    paths: List[Tuple] = []

    def visit(block: Sequence[Stmt], prefix: Tuple) -> None:
        for index, stmt in enumerate(block):
            paths.append(prefix + (index,))
            for selector, inner in _blocks_of(stmt):
                visit(inner, prefix + (index, selector))

    for findex, function in enumerate(case.functions):
        visit(function.body, (findex,))
    return paths


def _resolve_block(case: GeneratedCase, prefix: Tuple) -> List[Stmt]:
    """The statement list addressed by ``prefix`` (a path minus its last index)."""
    function = case.functions[prefix[0]]
    block: List[Stmt] = function.body
    i = 1
    while i < len(prefix):
        stmt = block[prefix[i]]
        selector = prefix[i + 1]
        block = dict(_blocks_of(stmt))[selector]
        i += 2
    return block


def _resolve_stmt(case: GeneratedCase, path: Tuple) -> Stmt:
    return _resolve_block(case, path[:-1])[path[-1]]


# --------------------------------------------------------------------------- #
def shrink_case(
    case: GeneratedCase,
    config: Optional[OracleConfig] = None,
    max_checks: int = 400,
) -> ShrinkResult:
    """Convenience wrapper: shrink one failing case."""
    return Shrinker(config, max_checks=max_checks).shrink(case)
