"""Batch API for differential sweeps, optionally parallel across processes.

:func:`run_sweep` checks many generated programs (and/or explicit cases)
through the differential oracle and aggregates the outcome.  With ``jobs > 1``
the per-program checks are distributed over a :mod:`multiprocessing` worker
pool (the pool plumbing is shared with :mod:`repro.wcet.batch`) — each
program is an independent compile→analyze→replay pipeline, so the sweep
scales with cores.  When the oracle configuration names a ``cache_dir``,
every worker shares the same persistent function-summary store, so repeated
sweeps over the same seeds skip the analysis work entirely.

The parallel and serial paths produce identical results (same seeds, same
oracle configuration, same deterministic input enumeration); only wall-clock
differs.  ``WCETReport`` objects are dropped from the returned results by
default — they are large, and shipping them back through the pool pickling
layer would dominate the win of parallelism.  Pass ``keep_reports=True`` when
the caller needs them: serial sweeps keep the full reports, parallel sweeps
ship the :meth:`~repro.wcet.report.WCETReport.slim` form (everything except
the per-block timing tables) across the pool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.summaries import merge_stats
from repro.testing.generator import generate_case
from repro.testing.oracle import DifferentialOracle, OracleConfig, OracleResult
from repro.wcet.batch import pool_map, resolve_jobs


@dataclass
class SweepResult:
    """Aggregated outcome of one differential sweep."""

    results: List[OracleResult]
    seconds: float
    jobs: int

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def failures(self) -> List[OracleResult]:
        return [result for result in self.results if not result.ok]

    @property
    def total_runs(self) -> int:
        return sum(len(result.runs) for result in self.results)

    def phase_seconds(self) -> Dict[str, float]:
        """Per-phase oracle time summed over all checked programs.

        Note that with ``jobs > 1`` the phases overlap in wall-clock time;
        the sum can exceed :attr:`seconds`.
        """
        totals: Dict[str, float] = {}
        for result in self.results:
            for phase, spent in result.timings.items():
                totals[phase] = totals.get(phase, 0.0) + spent
        return totals

    def cache_stats(self) -> Dict[str, int]:
        """Function-summary cache counters summed over all checked programs."""
        totals: Dict[str, int] = {}
        for result in self.results:
            merge_stats(totals, result.cache_stats)
        return totals

    def bounds_by_case(self) -> Dict[str, tuple]:
        """``case name -> (wcet, bcet)`` — the identity fingerprint of a sweep."""
        return {
            result.case_name: (result.wcet_cycles, result.bcet_cycles)
            for result in self.results
        }


# --------------------------------------------------------------------------- #
# Worker-pool plumbing.  The oracle is constructed once per worker process
# (initializer) so repeated checks share nothing but also rebuild nothing —
# except the persistent summary store, which is the whole point of sharing.
# --------------------------------------------------------------------------- #
_WORKER_ORACLE: Optional[DifferentialOracle] = None
_WORKER_KEEP_REPORTS = False


def _init_worker(config: OracleConfig, keep_reports: bool = False) -> None:
    global _WORKER_ORACLE, _WORKER_KEEP_REPORTS
    _WORKER_ORACLE = DifferentialOracle(config)
    _WORKER_KEEP_REPORTS = keep_reports


def _check_seed(seed: int) -> OracleResult:
    assert _WORKER_ORACLE is not None
    result = _WORKER_ORACLE.check(generate_case(seed))
    if result.report is not None:
        # Full reports are heavy; ship the slim form when the caller asked
        # for reports at all, nothing otherwise.
        result.report = result.report.slim() if _WORKER_KEEP_REPORTS else None
    return result


def run_sweep(
    seeds: Sequence[int],
    config: Optional[OracleConfig] = None,
    jobs: Optional[int] = None,
    keep_reports: bool = False,
) -> SweepResult:
    """Differential-check the programs generated from ``seeds``.

    ``jobs`` selects the worker-pool width: ``None`` or ``1`` runs serially in
    this process, ``0`` (or any non-positive value) uses all cores, and any
    other value that many worker processes.  Results are returned in seed
    order regardless of the completion order across workers.
    """
    config = config or OracleConfig()
    jobs = resolve_jobs(jobs)
    started = time.perf_counter()

    seeds = list(seeds)
    if jobs <= 1 or len(seeds) <= 1:
        oracle = DifferentialOracle(config)
        results = []
        for seed in seeds:
            result = oracle.check(generate_case(seed))
            if not keep_reports:
                result.report = None
            results.append(result)
        return SweepResult(results, time.perf_counter() - started, jobs=1)

    results = pool_map(
        _check_seed,
        seeds,
        jobs,
        initializer=_init_worker,
        initargs=(config, keep_reports),
    )
    return SweepResult(results, time.perf_counter() - started, jobs=jobs)
