"""Path analysis and the top-level WCET analyzer (Figure 1 end-to-end).

* :mod:`repro.wcet.simplex` / :mod:`repro.wcet.ilp` — a self-contained linear
  and integer-linear programming solver (with an optional scipy backend) used
  by the IPET path analysis;
* :mod:`repro.wcet.ipet` — the Implicit Path Enumeration Technique: block and
  edge frequency variables, structural flow conservation, loop-bound and
  annotation constraints, maximisation of total execution time;
* :mod:`repro.wcet.blocktime` — per-block timing tables combining pipeline,
  cache and memory-map information;
* :mod:`repro.wcet.contexts` — call-site context sensitivity;
* :mod:`repro.wcet.analyzer` — the :class:`WCETAnalyzer` orchestrating decoding,
  loop/value analysis, cache/pipeline analysis and path analysis;
* :mod:`repro.wcet.report` — structured analysis reports.
"""

from repro.wcet.ilp import ILPProblem, ILPSolution, LinearExpression, solve_ilp
from repro.wcet.ipet import IPETBuilder, PathAnalysisResult
from repro.wcet.blocktime import BlockTimeTable
from repro.wcet.contexts import CallContext
from repro.wcet.analyzer import AnalysisOptions, WCETAnalyzer
from repro.wcet.batch import AnalysisRequest, BatchResult, analyze_batch
from repro.wcet.report import FunctionReport, WCETReport, ChallengeReport

__all__ = [
    "AnalysisRequest",
    "BatchResult",
    "analyze_batch",
    "ILPProblem",
    "ILPSolution",
    "LinearExpression",
    "solve_ilp",
    "IPETBuilder",
    "PathAnalysisResult",
    "BlockTimeTable",
    "CallContext",
    "AnalysisOptions",
    "WCETAnalyzer",
    "WCETReport",
    "FunctionReport",
    "ChallengeReport",
]
