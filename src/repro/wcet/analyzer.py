"""The top-level static WCET analyzer — Figure 1 end to end.

:class:`WCETAnalyzer` reproduces the phase structure of aiT-like analyzers the
paper describes:

1. **Decoding** — CFG reconstruction and call-graph construction; indirect
   branches/calls need :class:`~repro.cfg.reconstruct.ControlFlowHints`
   (supplied through the annotation set), otherwise the analysis stops — the
   tier-one "function pointers" challenge.
2. **Loop/value analysis** — abstract interpretation per function, automatic
   loop bound detection; remaining loops must be bounded by annotations or the
   analysis stops — the tier-one "loops and recursions" challenge.  Irreducible
   loops can only be bounded by annotations.
3. **Cache/pipeline analysis** — abstract instruction/data cache analysis and
   the in-order pipeline model produce per-basic-block cycle bounds.
4. **Path analysis** — IPET integer linear programming maximises (minimises)
   total time subject to structural and annotation flow constraints, yielding
   the WCET (BCET) bound.

The analyzer is *mode aware* (:meth:`WCETAnalyzer.analyze` accepts an operating
mode and/or an error scenario, Section 4.3), supports context-sensitive callee
analysis (argument values at the call site seed the callee's value analysis)
and handles annotated recursion.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.errors import (
    AnnotationError,
    CFGError,
    UnboundedLoopError,
)
from repro.analysis import summaries as summary_keys
from repro.analysis.domains.interval import Interval
from repro.analysis.domains.memstate import AbstractValue
from repro.analysis.loopbounds import LoopBoundAnalysis, LoopBoundResult
from repro.analysis.summaries import FunctionSummary, SummaryCache
from repro.cache import configured_store
from repro.analysis.reachability import find_unreachable_code
from repro.analysis.value import (
    AccessInfo,
    ValueAnalysis,
    ValueAnalysisResult,
    default_engine,
)
from repro.annotations.registry import AnnotationSet
from repro.cfg.callgraph import CallGraph, build_callgraph
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import LoopForest, find_loops
from repro.cfg.reconstruct import reconstruct_program
from repro.hardware.cache_analysis import (
    CacheClassification,
    DataCacheAnalysis,
    InstructionCacheAnalysis,
)
from repro.hardware.pipeline import PipelineModel
from repro.hardware.processor import ProcessorConfig
from repro.ir.instructions import ARGUMENT_REGISTERS, Opcode
from repro.ir.program import Program
from repro.wcet.blocktime import BlockTimeTable
from repro.wcet.contexts import CallContext, ContextCache
from repro.wcet.ipet import IPETBuilder, ResolvedFlowConstraint
from repro.wcet.report import (
    ChallengeReport,
    FunctionReport,
    LoopReport,
    PhaseTiming,
    WCETReport,
)

_M_PIVOTS = obs_metrics.REGISTRY.counter(
    "repro_simplex_pivots_total", "Simplex pivots spent in IPET path analysis."
)


class _PhaseClock:
    """Exclusive per-phase wall-clock accounting.

    Time always accrues to the *innermost* active phase: entering a nested
    phase pauses the enclosing one.  Context-sensitive callee analysis makes
    this essential — a callee's full analysis runs in the middle of the
    caller's pipeline-analysis phase, and naive interval timing would charge
    the callee's loop/value/cache/path work to the caller's pipeline bucket
    *in addition to* the callee's own buckets.  With the stacked clock the
    per-phase figures are disjoint and sum to the measured total.
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self._stack: List[str] = []
        self._checkpoint = 0.0

    def _accrue(self, now: float) -> None:
        if self._stack:
            top = self._stack[-1]
            self.seconds[top] = self.seconds.get(top, 0.0) + (now - self._checkpoint)
        self._checkpoint = now

    @contextmanager
    def phase(self, name: str):
        self._accrue(time.perf_counter())
        self._stack.append(name)
        span = obs_trace.begin(f"phase:{name}")
        try:
            yield
        finally:
            obs_trace.end(span)
            self._accrue(time.perf_counter())
            self._stack.pop()


@dataclass
class AnalysisOptions:
    """Tuning knobs of the WCET analyzer."""

    #: Re-analyse callees per call site with the argument values known there.
    context_sensitive_calls: bool = True
    #: Use the abstract instruction cache analysis (if the processor has one).
    use_instruction_cache: bool = True
    #: Use the abstract data cache analysis (if the processor has one).
    use_data_cache: bool = True
    #: Assume mutable globals still hold their initial values at task entry.
    assume_initial_globals: bool = False
    #: ILP backend: "auto", "scipy" or "simplex".
    ilp_backend: str = "auto"
    #: Raise immediately on unresolved indirect branches/calls (tier-one).
    strict_indirect: bool = True
    #: Also compute BCET bounds (cheap; disable for large sweeps).
    compute_bcet: bool = True
    #: Cap on distinct argument contexts analysed per callee.
    max_contexts_per_function: int = 16
    #: Value-analysis execution engine: "fused" (block-compiled kernels) or
    #: "reference" (instruction-at-a-time oracle).  Defaults to the
    #: ``REPRO_ENGINE`` environment variable, falling back to "fused".
    engine: str = field(default_factory=default_engine)


class WCETAnalyzer:
    """Static WCET analyzer for one program on one processor configuration."""

    def __init__(
        self,
        program: Program,
        processor: ProcessorConfig,
        annotations: Optional[AnnotationSet] = None,
        options: Optional[AnalysisOptions] = None,
        summary_store=None,
        summary_cache: Optional[SummaryCache] = None,
    ):
        program.validate()
        self.program = program
        self.processor = processor
        self.annotations = annotations or AnnotationSet()
        self.options = options or AnalysisOptions()
        self.pipeline = PipelineModel(processor)
        # Two-tier function-summary cache.  ``summary_cache`` shares an
        # in-process tier between analyzers (the batch API uses this);
        # ``summary_store`` attaches a persistent on-disk tier.  With neither,
        # the process-global store configured via ``repro.cache.configure``
        # (the CLIs' --cache-dir) is picked up, if any.
        if summary_cache is not None:
            self.summaries = summary_cache
        else:
            if summary_store is None:
                summary_store = configured_store()
            self.summaries = SummaryCache(store=summary_store)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def analyze(
        self,
        entry: Optional[str] = None,
        mode: Optional[str] = None,
        error_scenario: Optional[str] = None,
        _shared: "Optional[_SharedModeState]" = None,
    ) -> WCETReport:
        """Analyse the task starting at ``entry`` (default: the program entry).

        ``mode`` selects an operating mode (its facts are merged in), and
        ``error_scenario`` applies a documented error-handling scenario.
        ``_shared`` carries the cross-mode pipeline state
        :meth:`analyze_all_modes` threads through its per-mode runs so the
        mode-independent phases (decoding, loop/value analysis) run once.
        """
        entry = entry or self.program.entry
        annotations = self.annotations.for_mode(mode)
        if error_scenario is not None:
            scenario = next(
                (s for s in annotations.error_scenarios if s.name == error_scenario),
                None,
            )
            if scenario is None:
                raise AnnotationError(f"unknown error scenario {error_scenario!r}")
            infeasible, constraints = scenario.to_flow_facts()
            annotations.infeasible_paths.extend(infeasible)
            annotations.flow_constraints.extend(constraints)

        phases: List[PhaseTiming] = []
        challenges = ChallengeReport()
        clock = _PhaseClock()

        # ----------------------------------------------------------------- #
        # Phase 1: decoding (CFG reconstruction + call graph).  Decoding is
        # mode independent (hints and strictness are shared by every mode),
        # so with a shared pipeline it runs once and later modes replay the
        # recorded outcome.
        # ----------------------------------------------------------------- #
        with clock.phase("decoding"):
            decoded = _shared.decoded if _shared is not None else None
            if decoded is None:
                cfgs, issues = reconstruct_program(
                    self.program,
                    hints=annotations.control_flow_hints,
                    strict=self.options.strict_indirect,
                )
                callgraph = build_callgraph(
                    self.program,
                    hints=annotations.control_flow_hints,
                    strict=self.options.strict_indirect,
                )
                issue_messages = [str(issue) for issue in issues]
                issue_messages.extend(
                    f"{caller}@{address:#x}: unresolved indirect call (function pointer)"
                    for caller, address in callgraph.unresolved_calls
                )
                decode_detail = f"{sum(len(c.blocks) for c in cfgs.values())} basic blocks"
                decoded = (cfgs, callgraph, issue_messages, decode_detail)
                if _shared is not None:
                    _shared.decoded = decoded
                    decode_detail += " (shared across modes)"
            else:
                cfgs, callgraph, issue_messages, decode_detail = decoded
                decode_detail += " (shared across modes)"
            for message in issue_messages:
                challenges.add_tier_one(message)
        phases.append(
            PhaseTiming("decoding", clock.seconds.get("decoding", 0.0), decode_detail)
        )

        reachable = callgraph.reachable_from(entry)
        analysis_state = _RunState(
            annotations=annotations,
            cfgs=cfgs,
            callgraph=callgraph,
            challenges=challenges,
            clock=clock,
            reports={},
            context_cache=ContextCache(),
            recursive_functions=callgraph.recursive_functions(),
            summaries=self.summaries,
            bucket=summary_keys.bucket_digest(
                self.program.content_digest(), self.processor, self.options
            ),
            hints_dig=summary_keys.hints_digest(annotations),
            loops_by_function=(
                _shared.loops_by_function if _shared is not None else {}
            ),
            value_memo=(_shared.value_memo if _shared is not None else {}),
        )

        # ----------------------------------------------------------------- #
        # Phases 2-4 per function, callees before callers.  The enclosing
        # "orchestration" phase soaks up the time between the named phases
        # (call-graph walking, context-cache management, recursion scaling)
        # so the per-phase figures sum to the total analysis time.
        # ----------------------------------------------------------------- #
        with clock.phase("orchestration"):
            for component in callgraph.strongly_connected_components():
                members = [name for name in component if name in reachable]
                if not members:
                    continue
                is_recursive = len(component) > 1 or any(
                    name in callgraph.callees(name) for name in component
                )
                if is_recursive:
                    self._analyze_recursive_component(members, analysis_state)
                else:
                    name = members[0]
                    report = self._analyze_function(
                        name, CallContext.default(name), analysis_state
                    )
                    analysis_state.reports[name] = report

        for phase_name in (
            "loop/value analysis",
            "cache analysis",
            "pipeline analysis",
            "path analysis",
            "orchestration",
        ):
            phases.append(
                PhaseTiming(
                    phase_name,
                    clock.seconds.get(phase_name, 0.0),
                    iterations=analysis_state.counters.get(phase_name, 0),
                )
            )

        entry_report = analysis_state.reports[entry]
        report = WCETReport(
            entry=entry,
            processor=self.processor.name,
            wcet_cycles=entry_report.wcet_cycles,
            bcet_cycles=entry_report.bcet_cycles,
            functions={
                name: function_report
                for name, function_report in analysis_state.reports.items()
                if name in reachable
            },
            phases=phases,
            challenges=challenges,
            mode=mode,
            error_scenario=error_scenario,
            annotation_summary=annotations.summary(),
        )
        self.summaries.flush()
        return report

    def analyze_all_modes(self, entry: Optional[str] = None) -> Dict[Optional[str], WCETReport]:
        """Analyse the mode-unaware case plus every declared operating mode.

        The per-mode runs share one pipeline state: decoding runs once, and
        the loop/value analysis of every function is memoised on its actual
        inputs (entry register values, globals assumption), so a mode that
        only adds path-level facts (flow constraints, infeasible paths, loop
        bounds) re-runs none of the mode-independent phases — visible as
        near-zero "decoding" and "loop/value analysis" timings in every
        report after the first.  Functions whose full analysis inputs are
        unchanged by a mode are shared wholesale through the function-summary
        cache.
        """
        shared = _SharedModeState()
        results: Dict[Optional[str], WCETReport] = {
            None: self.analyze(entry=entry, _shared=shared)
        }
        for mode_name in self.annotations.mode_names():
            results[mode_name] = self.analyze(entry=entry, mode=mode_name, _shared=shared)
        return results

    # ------------------------------------------------------------------ #
    # Function-level analysis
    # ------------------------------------------------------------------ #
    def _analyze_function(
        self,
        name: str,
        context: CallContext,
        run: "_RunState",
        recursive_component: Optional[Set[str]] = None,
    ) -> FunctionReport:
        cached = run.context_cache.get(context)
        if cached is not None:
            # Journal the hit as well: a summary being recorded higher up the
            # stack must capture every context its subtree *consulted*, not
            # just the ones first registered inside it — a cold run of that
            # subtree alone would register them itself, and replay has to
            # reconstruct the same population.
            run.context_journal.append((context, cached))
            return cached

        # --- function-summary cache probe (tier 1 in-process, tier 2 disk) - #
        # Members of recursion cycles are excluded: their body analyses use
        # non-standard semantics (recursive calls charged zero) and their
        # default-context result is the depth-scaled one installed by
        # _analyze_recursive_component, so they are re-derived every run.
        key = None
        if recursive_component is None and not (
            run.recursive_functions and name in run.recursive_functions
        ):
            key = (
                run.bucket,
                summary_keys.summary_item_key(name, context, run.annotation_digest(name)),
            )
            summary = run.summaries.get(*key)
            if summary is not None:
                with obs_trace.span("summary-replay", attrs={"function": name}):
                    return self._install_summary(summary, context, run)
        challenge_marks = (len(run.challenges.tier_one), len(run.challenges.tier_two))
        known_reports = set(run.reports)
        journal_mark = len(run.context_journal)
        cap_mark = run.cap_binding_events

        annotations = run.annotations
        cfg = run.cfgs[name]
        loops = run.loops_for(name)

        # --- loop/value analysis (memoised on its actual inputs) ---------- #
        with run.clock.phase("loop/value analysis"):
            initial_registers = self._initial_registers(name, context, annotations)
            memo_key = (
                name,
                tuple(
                    sorted(
                        (register, value.interval.lo, value.interval.hi)
                        for register, value in initial_registers.items()
                    )
                ),
            )
            memo_entry = run.value_memo.get(memo_key)
            if memo_entry is None:
                value_analysis = ValueAnalysis(
                    self.program,
                    cfg,
                    loops,
                    initial_registers=initial_registers,
                    assume_initial_globals=self.options.assume_initial_globals,
                    engine=self.options.engine,
                )
                values = value_analysis.run()
                pristine_bounds = LoopBoundAnalysis(cfg, loops, values).run()
                run.value_memo[memo_key] = (value_analysis, values, pristine_bounds)
                run.counters["loop/value analysis"] = (
                    run.counters.get("loop/value analysis", 0) + values.iterations
                )
            else:
                value_analysis, values, pristine_bounds = memo_entry
            # Loop annotations mutate the bound set (and differ per mode);
            # the memoised result stays pristine, each run works on a copy.
            bounds = LoopBoundResult(
                function_name=pristine_bounds.function_name,
                bounds=dict(pristine_bounds.bounds),
                failures=dict(pristine_bounds.failures),
            )
            loop_reports = self._apply_loop_annotations(
                name, cfg, loops, bounds, annotations, run
            )

        if bounds.failures:
            details = "; ".join(
                f"loop {header:#x}: {failure.reason} — {failure.message}"
                for header, failure in sorted(bounds.failures.items())
            )
            run.challenges.add_tier_one(
                f"{name}: unbounded loops remain after annotations ({details})"
            )
            raise UnboundedLoopError(
                f"cannot compute a WCET bound for {name!r}: {details}. "
                "Add 'loopbound' annotations for these loops."
            )

        accesses = self._restrict_accesses(name, values.accesses, annotations, run)

        # --- cache analysis ------------------------------------------------ #
        with run.clock.phase("cache analysis"):
            icache_classes: Dict[int, CacheClassification] = {}
            dcache_classes: Dict[int, CacheClassification] = {}
            icache_summary: Dict[str, int] = {}
            dcache_summary: Dict[str, int] = {}
            if self.processor.icache is not None and self.options.use_instruction_cache:
                icache_result = InstructionCacheAnalysis(cfg, self.processor.icache, loops).run()
                icache_classes = icache_result.classifications
                icache_summary = icache_result.summary()
            if self.processor.dcache is not None and self.options.use_data_cache:
                dcache_result = DataCacheAnalysis(
                    cfg, self.processor.dcache, accesses, self.processor.memory_map, loops
                ).run()
                dcache_classes = dcache_result.classifications
                dcache_summary = dcache_result.summary()

        # --- pipeline analysis (per-block times + callee costs) ------------- #
        # Callee costs recursively analyse the callees; their phases pause
        # this one (see _PhaseClock), so only the caller's own table work is
        # charged to "pipeline analysis".
        with run.clock.phase("pipeline analysis"):
            table = BlockTimeTable(function_name=name)
            for block_id, block in cfg.blocks.items():
                table.set_block(
                    self.pipeline.block_time_bounds(
                        block, icache_classes, dcache_classes, accesses
                    )
                )
            self._add_callee_costs(
                name, cfg, value_analysis, values, table, run, recursive_component
            )

        # --- path analysis --------------------------------------------------#
        with run.clock.phase("path analysis"):
            reachability = find_unreachable_code(cfg, values)
            infeasible_blocks = set(reachability.all_unreachable())
            infeasible_blocks |= self._resolve_infeasible(name, cfg, annotations)
            infeasible_edges = set(values.infeasible_edges())
            flow_constraints = self._resolve_flow_constraints(name, cfg, annotations)
            loop_bound_map = {
                header: bound.max_back_edges for header, bound in bounds.bounds.items()
            }

            ipet = IPETBuilder(cfg, loops, engine=self.options.engine)
            solve_span = obs_trace.begin("simplex-solve", attrs={"function": name})
            if self.options.compute_bcet:
                # Both objectives share one constraint system (and, under the
                # bespoke simplex, one phase-1 feasibility basis).
                wcet_result, bcet_result = ipet.solve_pair(
                    table.wcet_weights(),
                    table.bcet_weights(),
                    loop_bound_map,
                    infeasible_blocks=infeasible_blocks,
                    infeasible_edges=infeasible_edges,
                    flow_constraints=flow_constraints,
                    backend=self.options.ilp_backend,
                )
                bcet_cycles = bcet_result.bound_cycles
                pivots = wcet_result.ilp_pivots + bcet_result.ilp_pivots
            else:
                wcet_result = ipet.solve(
                    table.wcet_weights(),
                    loop_bound_map,
                    infeasible_blocks=infeasible_blocks,
                    infeasible_edges=infeasible_edges,
                    flow_constraints=flow_constraints,
                    maximise=True,
                    backend=self.options.ilp_backend,
                )
                bcet_cycles = 0
                pivots = wcet_result.ilp_pivots
            if solve_span is not None:
                solve_span.set("pivots", pivots)
            obs_trace.end(solve_span)
            run.counters["path analysis"] = (
                run.counters.get("path analysis", 0) + pivots
            )
            _M_PIVOTS.inc(pivots)

        unknown_accesses = sum(1 for info in accesses.values() if info.unknown)
        imprecise_accesses = sum(
            1 for info in accesses.values() if not info.absolute.is_constant
        )
        if unknown_accesses:
            run.challenges.add_tier_two(
                f"{name}: {unknown_accesses} memory accesses with completely unknown "
                "addresses (charged with the slowest memory module)"
            )
        not_classified = dcache_summary.get("NC", 0) + icache_summary.get("NC", 0)
        if not_classified:
            run.challenges.add_tier_two(
                f"{name}: {not_classified} cache accesses could not be classified "
                "(charged as misses)"
            )

        report = FunctionReport(
            name=name,
            wcet_cycles=wcet_result.bound_cycles,
            bcet_cycles=bcet_cycles,
            loop_reports=loop_reports,
            block_times=dict(table.times),
            block_counts=wcet_result.block_counts,
            icache_summary=icache_summary,
            dcache_summary=dcache_summary,
            unreachable_blocks=reachability.all_unreachable(),
            imprecise_accesses=imprecise_accesses,
            unknown_accesses=unknown_accesses,
            callee_wcet=dict(table.callee_wcet),
            ilp_nodes=wcet_result.ilp_nodes,
            context=str(context),
        )
        if key is not None and run.cap_binding_events == cap_mark:
            # Only cache subtrees whose context-sensitivity decisions were
            # independent of the run-global context population (the
            # ``max_contexts_per_function`` cap never became binding inside
            # them): those replay identically under any starting state.
            run.summaries.put(
                *key,
                FunctionSummary(
                    report=report,
                    subtree_reports={
                        fn: rep
                        for fn, rep in run.reports.items()
                        if fn not in known_reports
                    },
                    contexts=tuple(run.context_journal[journal_mark:]),
                    tier_one=tuple(run.challenges.tier_one[challenge_marks[0]:]),
                    tier_two=tuple(run.challenges.tier_two[challenge_marks[1]:]),
                ),
            )
        run.record_context(context, report)
        return report

    def _install_summary(
        self, summary: FunctionSummary, context: CallContext, run: "_RunState"
    ) -> FunctionReport:
        """Replay a cached analysis subtree into this run's state.

        Reconstructs exactly what a cold analysis of the subtree would have
        left behind: the challenge messages it emitted, the callee reports it
        added, and the callee contexts it registered (the latter keeps the
        ``max_contexts_per_function`` cap deterministic between cold and warm
        runs).
        """
        for message in summary.tier_one:
            run.challenges.add_tier_one(message)
        for message in summary.tier_two:
            run.challenges.add_tier_two(message)
        for fn, rep in summary.subtree_reports.items():
            run.reports.setdefault(fn, rep)
        for ctx, rep in summary.contexts:
            existing = run.context_cache.peek(ctx)
            if existing is None:
                run.record_context(ctx, rep)
            else:
                # Already registered in this run: journal the consultation
                # anyway (with the run's own report), exactly as the cold
                # path does for context-cache hits — a summary being
                # recorded higher up the stack must see it.
                run.context_journal.append((ctx, existing))
        run.record_context(context, summary.report)
        return summary.report

    # ------------------------------------------------------------------ #
    def _analyze_recursive_component(self, members: List[str], run: "_RunState") -> None:
        """Handle a recursion cycle (MISRA rule 16.2 territory).

        Each member is analysed with recursive calls (calls to other members of
        the cycle) charged zero cycles — the *body* cost.  The annotated
        recursion depth ``D`` then scales the result:

        * with at most one recursive call site per body the number of
          activations is at most ``D``;
        * with ``k > 1`` recursive call sites per body it is at most
          ``(k^D - 1) / (k - 1)`` (a call tree of branching factor ``k``).

        The resulting bound is conservative but sound under the annotated
        depth; without an annotation the analysis is aborted, which is exactly
        the tier-one situation the paper describes.
        """
        component = set(members)
        depth_annotation = None
        for name in members:
            annotation = run.annotations.recursion_bound_for(name)
            if annotation is not None:
                if depth_annotation is None or annotation.max_depth > depth_annotation:
                    depth_annotation = annotation.max_depth
        if depth_annotation is None:
            run.challenges.add_tier_one(
                f"recursion cycle {sorted(component)} has no recursion-depth annotation"
            )
            raise CFGError(
                f"functions {sorted(component)} are (mutually) recursive and no "
                "'recursion' annotation bounds the depth; no WCET bound can be "
                "computed (MISRA rule 16.2)"
            )
        run.challenges.add_tier_two(
            f"recursion cycle {sorted(component)} bounded by annotated depth "
            f"{depth_annotation}"
        )

        body_reports: Dict[str, FunctionReport] = {}
        branching = 1
        for name in members:
            report = self._analyze_function(
                name,
                CallContext.default(name),
                run,
                recursive_component=component,
            )
            body_reports[name] = report
            sites = 0
            for site in run.callgraph.call_sites_in(name):
                if site.callee in component:
                    sites += 1
            branching = max(branching, sites)

        if branching <= 1:
            activations = depth_annotation
        else:
            activations = (branching ** depth_annotation - 1) // (branching - 1)

        total_body_wcet = sum(r.wcet_cycles for r in body_reports.values())
        total_body_bcet = min(r.bcet_cycles for r in body_reports.values())
        for name, body in body_reports.items():
            scaled = FunctionReport(
                name=name,
                wcet_cycles=activations * total_body_wcet,
                bcet_cycles=total_body_bcet,
                loop_reports=body.loop_reports,
                block_times=body.block_times,
                block_counts=body.block_counts,
                icache_summary=body.icache_summary,
                dcache_summary=body.dcache_summary,
                unreachable_blocks=body.unreachable_blocks,
                imprecise_accesses=body.imprecise_accesses,
                unknown_accesses=body.unknown_accesses,
                callee_wcet=body.callee_wcet,
                ilp_nodes=body.ilp_nodes,
                context=f"{name}[recursion depth {depth_annotation}]",
            )
            run.reports[name] = scaled
            # Later callers must see the scaled cost.
            run.record_context(CallContext.default(name), scaled)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _initial_registers(
        self, name: str, context: CallContext, annotations: AnnotationSet
    ) -> Dict[str, AbstractValue]:
        initial: Dict[str, AbstractValue] = {}
        for annotation in annotations.argument_ranges_for(name):
            initial[annotation.register] = AbstractValue(
                Interval(annotation.low, annotation.high)
            )
        # Context argument values (call-site specific) override annotations.
        for register, interval in context.argument_intervals().items():
            initial[register] = AbstractValue(interval)
        return initial

    def _apply_loop_annotations(
        self,
        name: str,
        cfg: ControlFlowGraph,
        loops: LoopForest,
        bounds: LoopBoundResult,
        annotations: AnnotationSet,
        run: "_RunState",
    ) -> List[LoopReport]:
        for annotation in annotations.loop_bounds_for(name):
            block_id = _resolve_location(cfg, annotation.location)
            if block_id is None:
                raise AnnotationError(
                    f"loop bound annotation for {name}/{annotation.location!r} does "
                    "not match any basic block"
                )
            loop = loops.loop_with_header(block_id) or loops.innermost_loop_of(block_id)
            if loop is None:
                raise AnnotationError(
                    f"loop bound annotation for {name}/{annotation.location!r}: the "
                    "location is not inside any loop"
                )
            existing = bounds.bounds.get(loop.header)
            if existing is None or annotation.max_iterations < existing.max_back_edges:
                bounds.add_annotation(
                    loop.header, annotation.max_iterations, detail=annotation.comment
                )

        reports: List[LoopReport] = []
        for loop in loops.loops:
            bound = bounds.bounds.get(loop.header)
            failure = bounds.failures.get(loop.header)
            if bound is not None:
                if bound.source == "annotation":
                    run.challenges.add_tier_two(
                        f"{name}: loop at {loop.header:#x} bounded only by annotation "
                        f"(<= {bound.max_back_edges} iterations)"
                    )
                reports.append(
                    LoopReport(
                        function=name,
                        header=loop.header,
                        bound=bound.max_back_edges,
                        source=bound.source,
                        irreducible=loop.irreducible,
                        detail=bound.detail,
                    )
                )
            else:
                reports.append(
                    LoopReport(
                        function=name,
                        header=loop.header,
                        bound=None,
                        source="unbounded",
                        irreducible=loop.irreducible,
                        failure_reason=failure.reason if failure else "",
                        detail=failure.message if failure else "",
                    )
                )
        return reports

    def _restrict_accesses(
        self,
        name: str,
        accesses: Dict[int, AccessInfo],
        annotations: AnnotationSet,
        run: "_RunState",
    ) -> Dict[int, AccessInfo]:
        annotation = annotations.memory_regions_for(name)
        if annotation is None:
            return accesses
        allowed = Interval.bottom()
        for region in annotation.regions:
            module = self.processor.memory_map.module_named(region)
            allowed = allowed.join(Interval(module.base, module.end - 1))
        restricted: Dict[int, AccessInfo] = {}
        changed = 0
        for address, info in accesses.items():
            if info.unknown or info.absolute.is_top:
                restricted[address] = AccessInfo(
                    instruction_address=info.instruction_address,
                    is_load=info.is_load,
                    size=info.size,
                    bases=info.bases,
                    offset=info.offset,
                    absolute=allowed,
                    unknown=False,
                )
                changed += 1
            else:
                restricted[address] = info
        if changed:
            run.challenges.add_tier_two(
                f"{name}: {changed} unknown memory accesses restricted to regions "
                f"{list(annotation.regions)} by annotation"
            )
        return restricted

    def _add_callee_costs(
        self,
        name: str,
        cfg: ControlFlowGraph,
        value_analysis: ValueAnalysis,
        values: ValueAnalysisResult,
        table: BlockTimeTable,
        run: "_RunState",
        recursive_component: Optional[Set[str]],
    ) -> None:
        hints = run.annotations.control_flow_hints
        for block_id, block in cfg.blocks.items():
            for instr in block.call_sites():
                if instr.opcode is Opcode.CALL:
                    targets = [instr.call_target()]
                else:
                    targets = list(hints.call_targets(instr.address) or ())
                    if not targets:
                        # Unresolved indirect call in permissive mode: charge
                        # the most expensive known function as a fallback.
                        targets = []
                worst = 0
                best = 0 if targets else 0
                best_candidates: List[int] = []
                for target in targets:
                    if recursive_component and target in recursive_component:
                        # Recursive calls are charged by the component scaling.
                        continue
                    callee_report = self._callee_report(
                        target, instr.address, block_id, value_analysis, values, run
                    )
                    worst = max(worst, callee_report.wcet_cycles)
                    best_candidates.append(callee_report.bcet_cycles)
                best = min(best_candidates) if best_candidates else 0
                if worst or best:
                    table.add_callee_cost(block_id, worst, best)

    def _callee_report(
        self,
        callee: str,
        call_address: int,
        block_id: int,
        value_analysis: ValueAnalysis,
        values: ValueAnalysisResult,
        run: "_RunState",
    ) -> FunctionReport:
        context = CallContext.default(callee)
        # Recursive functions are always charged with their (depth-scaled)
        # default-context bound; analysing them per call-site argument context
        # would sidestep the recursion-depth annotation.
        if run.recursive_functions and callee in run.recursive_functions:
            report = run.context_cache.get(context)
            if report is not None:
                if callee not in run.reports:
                    run.reports[callee] = report
                return report
        if self.options.context_sensitive_calls:
            state = value_analysis.state_before(values, block_id, call_address)
            if state.reachable:
                arguments: Dict[str, Interval] = {}
                callee_function = self.program.function(callee)
                used = ARGUMENT_REGISTERS[: max(callee_function.num_params, 0)]
                for register in used:
                    value = state.get(register)
                    if value.is_float:
                        continue
                    interval = self._argument_interval(value)
                    if interval is not None and not interval.is_top:
                        arguments[register] = interval
                if arguments:
                    candidate = CallContext.from_arguments(callee, arguments)
                    existing = run.context_cache.contexts_for(callee)
                    cap = self.options.max_contexts_per_function
                    if cap > 0 and len(existing) >= cap:
                        # The cap is binding: the decision below depends on
                        # which contexts happen to be registered already —
                        # run-global state a function summary cannot capture.
                        # Summaries recorded while this was the case are not
                        # reusable (see _analyze_function).
                        run.cap_binding_events += 1
                    if candidate in existing or len(existing) < cap:
                        context = candidate
        # _analyze_function starts with the (hit/miss-counted) context-cache
        # lookup for this exact context, so probing here too would count
        # every cold callee analysis as two misses.
        report = self._analyze_function(callee, context, run)
        if context.is_default and callee not in run.reports:
            run.reports[callee] = report
        elif callee not in run.reports:
            # Make sure the function shows up in the overall report even if it
            # was only analysed context-sensitively.
            run.reports[callee] = report
        return report

    def _argument_interval(self, value: AbstractValue) -> Optional[Interval]:
        """Numeric interval to seed a callee context with, or ``None``.

        Address-typed values (symbolic base + offset interval) must be
        translated to *absolute* address intervals before crossing the call
        boundary: the callee's value analysis has no notion of the caller's
        bases, so passing the raw offset interval (e.g. ``[0, 0]`` for
        ``&global``) would make callee memory accesses resolve to bogus
        addresses outside every memory module — and be charged zero cycles,
        undercutting the WCET bound.  Bases without a static address (the
        caller's stack frame) are dropped entirely, which is sound: the
        callee argument simply stays unknown.
        """
        if not value.bases:
            return value.interval
        absolute = Interval.bottom()
        for base in value.bases:
            if not (self.program.has_data(base) or self.program.has_function(base)):
                return None
            base_address = self.program.symbol_address(base)
            absolute = absolute.join(value.interval.add(Interval.const(base_address)))
        return absolute

    def _resolve_infeasible(
        self, name: str, cfg: ControlFlowGraph, annotations: AnnotationSet
    ) -> Set[int]:
        result: Set[int] = set()
        for annotation in annotations.infeasible_for(name):
            block_id = _resolve_location(cfg, annotation.location)
            if block_id is None:
                raise AnnotationError(
                    f"infeasible-path annotation for {name}/{annotation.location!r} "
                    "does not match any basic block"
                )
            result.add(block_id)
        return result

    def _resolve_flow_constraints(
        self, name: str, cfg: ControlFlowGraph, annotations: AnnotationSet
    ) -> List[ResolvedFlowConstraint]:
        resolved: List[ResolvedFlowConstraint] = []
        for constraint in annotations.flow_constraints_for(name):
            terms: List[Tuple[int, int]] = []
            for location, coefficient in constraint.terms:
                block_id = _resolve_location(cfg, location)
                if block_id is None:
                    raise AnnotationError(
                        f"flow constraint {constraint.name or constraint.terms!r} for "
                        f"{name}: location {location!r} does not match any block"
                    )
                terms.append((block_id, coefficient))
            resolved.append(
                ResolvedFlowConstraint(
                    terms=tuple(terms),
                    relation=constraint.relation,
                    bound=constraint.bound,
                    name=constraint.name,
                )
            )
        return resolved


@dataclass
class _SharedModeState:
    """Mode-independent pipeline state shared by :meth:`analyze_all_modes`.

    * ``decoded`` — the CFGs, call graph, decoding-issue messages and the
      phase-detail string, produced once by the first per-mode run;
    * ``loops_by_function`` — loop forests, a pure function of the CFGs;
    * ``value_memo`` — converged value analyses and pristine loop-bound
      results, keyed by ``(function, canonical entry-register values)``:
      the complete set of inputs the loop/value phase depends on once the
      CFG is fixed.  Modes that only add path-level facts share every entry.
    """

    decoded: Optional[tuple] = None
    loops_by_function: Dict[str, LoopForest] = field(default_factory=dict)
    value_memo: Dict[tuple, tuple] = field(default_factory=dict)


@dataclass
class _RunState:
    """Mutable state shared by one :meth:`WCETAnalyzer.analyze` run."""

    annotations: AnnotationSet
    cfgs: Dict[str, ControlFlowGraph]
    callgraph: CallGraph
    challenges: ChallengeReport
    clock: _PhaseClock
    reports: Dict[str, FunctionReport]
    context_cache: ContextCache
    recursive_functions: Set[str] = None
    #: The analyzer's two-tier function-summary cache plus this run's
    #: content-addressed key material.
    summaries: SummaryCache = None
    bucket: str = ""
    hints_dig: str = ""
    #: Per-phase work counters (fixpoint iterations, simplex pivots) that
    #: end up on the matching :class:`PhaseTiming` entries.
    counters: Dict[str, int] = field(default_factory=dict)
    #: Loop forests / loop-value memo (shared across modes when the run is
    #: part of an ``analyze_all_modes`` pipeline, run-local otherwise).
    loops_by_function: Dict[str, LoopForest] = field(default_factory=dict)
    value_memo: Dict[tuple, tuple] = field(default_factory=dict)
    #: Every (context, report) registration of this run, in order; function
    #: summaries record the slice made inside their subtree so a cache hit
    #: can replay the exact same registrations.
    context_journal: List[Tuple[CallContext, FunctionReport]] = field(
        default_factory=list
    )
    #: Per-function annotation digests (memoised; keyed over the callee
    #: closure, so they are stable for the whole run).
    _annot_digests: Dict[str, str] = field(default_factory=dict)
    #: Times the ``max_contexts_per_function`` cap was binding (a callee's
    #: registered-context count had reached it when a call site was charged).
    #: Subtrees containing such events are never summarised: their outcome
    #: depends on run-global state the cache key cannot capture.
    cap_binding_events: int = 0

    # ------------------------------------------------------------------ #
    def record_context(self, context: CallContext, report: FunctionReport) -> None:
        self.context_cache.put(context, report)
        self.context_journal.append((context, report))

    def loops_for(self, name: str) -> LoopForest:
        loops = self.loops_by_function.get(name)
        if loops is None:
            loops = find_loops(self.cfgs[name])
            self.loops_by_function[name] = loops
        return loops

    def annotation_digest(self, name: str) -> str:
        digest = self._annot_digests.get(name)
        if digest is None:
            closure = summary_keys.callee_closure(self.callgraph, name)
            digest = summary_keys.function_annotation_digest(
                self.annotations, closure, self.hints_dig
            )
            self._annot_digests[name] = digest
        return digest


def _resolve_location(cfg: ControlFlowGraph, location) -> Optional[int]:
    """Resolve a label or address to the basic block containing it."""
    if isinstance(location, int):
        try:
            return cfg.block_containing(location).id
        except CFGError:
            return None
    for block_id, block in cfg.blocks.items():
        for instr in block.instructions:
            if instr.label == location:
                return block_id
    return None
