"""Parallel batch-analysis API: many whole-program analyses, one cache.

:func:`analyze_batch` fans a list of :class:`AnalysisRequest` objects over a
:mod:`multiprocessing` worker pool (or runs them serially for ``jobs <= 1``).
Every worker shares the same persistent summary store (``cache_dir``), and
within each process all requests share one in-process
:class:`~repro.analysis.summaries.SummaryCache` — so analysing the same
program on the same platform twice, whether across requests, across workers
or across separate batch runs, pays for the analysis once.  Results are
deterministic and identical to serial execution: the cache is content
addressed, so a hit can only skip work, never change a bound.

The module also owns the generic pool plumbing (:func:`resolve_jobs`,
:func:`pool_map`) used by :mod:`repro.testing.sweep`, so every parallel
entry point in the repo schedules work the same way.  Each request is
*executed* through the :mod:`repro.api` facade (one
:class:`~repro.api.project.Project` + :class:`~repro.api.service.AnalysisService`
per request) — this module only contributes the fan-out and the cache
sharing, never a second analysis surface.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.analysis.summaries import SummaryCache, merge_stats
from repro.annotations.registry import AnnotationSet
from repro.cache import SummaryStore, configured_store
from repro.hardware.processor import ProcessorConfig
from repro.ir.program import Program
from repro.wcet.analyzer import AnalysisOptions
from repro.wcet.report import WCETReport


# --------------------------------------------------------------------------- #
# Generic pool plumbing (shared with the differential sweep)
# --------------------------------------------------------------------------- #
def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/1 → serial, <=0 → all cores."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return multiprocessing.cpu_count()
    return jobs


def pool_map(
    function: Callable,
    items: Sequence,
    jobs: int,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
) -> List:
    """``pool.map`` with the repo's standard chunking, preserving item order."""
    chunksize = max(1, len(items) // (jobs * 4))
    with multiprocessing.Pool(
        processes=jobs, initializer=initializer, initargs=initargs
    ) as pool:
        return pool.map(function, items, chunksize=chunksize)


# --------------------------------------------------------------------------- #
# Requests and results
# --------------------------------------------------------------------------- #
@dataclass
class AnalysisRequest:
    """One whole-program analysis to run (pickled to pool workers)."""

    program: Program
    processor: ProcessorConfig
    annotations: Optional[AnnotationSet] = None
    options: Optional[AnalysisOptions] = None
    entry: Optional[str] = None
    mode: Optional[str] = None
    error_scenario: Optional[str] = None
    #: Analyse the mode-unaware case plus every declared operating mode
    #: through the shared mode pipeline; the result is then a dict
    #: ``{mode_name_or_None: report}`` instead of a single report.
    all_modes: bool = False
    label: str = ""


@dataclass
class BatchResult:
    """Outcome of one :func:`analyze_batch` call."""

    #: One entry per request, in request order: a :class:`WCETReport`, or a
    #: ``{mode: report}`` dict for ``all_modes`` requests.
    results: List[Union[WCETReport, Dict[Optional[str], WCETReport]]]
    #: Summary-cache hit/miss counters aggregated over every worker.
    cache_stats: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0
    jobs: int = 1

    def reports(self) -> List[WCETReport]:
        """Flatten per-mode dictionaries into one report list."""
        flat: List[WCETReport] = []
        for result in self.results:
            if isinstance(result, dict):
                flat.extend(result.values())
            else:
                flat.append(result)
        return flat


# --------------------------------------------------------------------------- #
def _execute(request: AnalysisRequest, cache: SummaryCache):
    # Each request is served through the repro.api facade — batch is a thin
    # fan-out layer, not a second implementation of program/cache wiring.
    # (Function-level import: repro.api.service imports this module for its
    # analyze_many plumbing.)
    from repro.api import AnalysisService, Project
    from repro.api import AnalysisRequest as ServiceRequest

    project = Project.from_program(
        request.program,
        processor=request.processor,
        annotations=request.annotations,
        cache="off",  # tier-2 wiring is the batch pool's job, not the project's
    )
    service = AnalysisService(project, summary_cache=cache)
    result = service.analyze(
        ServiceRequest(
            entry=request.entry,
            mode=request.mode,
            all_modes=request.all_modes,
            error_scenario=request.error_scenario,
            options=request.options,
            label=request.label,
        )
    )
    if request.all_modes:
        return result.reports
    return result.report


_WORKER_CACHE: Optional[SummaryCache] = None


def _init_batch_worker(cache_dir: Optional[str]) -> None:
    global _WORKER_CACHE
    store = SummaryStore(cache_dir) if cache_dir else None
    _WORKER_CACHE = SummaryCache(store=store)


def _run_request(request: AnalysisRequest):
    assert _WORKER_CACHE is not None
    before = _WORKER_CACHE.stats()
    started = time.perf_counter()
    result = _execute(request, _WORKER_CACHE)
    seconds = time.perf_counter() - started
    after = _WORKER_CACHE.stats()
    delta = {key: after[key] - before.get(key, 0) for key in after}
    return result, delta, seconds


# --------------------------------------------------------------------------- #
def analyze_batch(
    requests: Sequence[AnalysisRequest],
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    summary_cache: Optional[SummaryCache] = None,
    use_default_store: bool = True,
) -> BatchResult:
    """Analyse every request, optionally in parallel, sharing the cache.

    ``jobs``: ``None``/1 serial, ``0`` all cores, else that many workers.
    ``cache_dir`` attaches the persistent tier-2 store (created on demand)
    in every worker; with ``jobs <= 1`` an explicit ``summary_cache`` may be
    passed instead to share an in-process tier with the caller.  Parallel and
    serial execution produce identical reports (modulo wall-clock timings).
    ``use_default_store=False`` suppresses the fallback to the process-global
    configured store when ``cache_dir`` is absent — callers that already
    resolved the cache precedence themselves (the :mod:`repro.api` facade)
    pass this so "caching off" stays off in workers too.
    """
    requests = list(requests)
    jobs = resolve_jobs(jobs)
    started = time.perf_counter()

    # One execution path: collect the streaming iterator (below), which owns
    # the cache wiring, the jobs/summary_cache validation and the pool.
    results: List = [None] * len(requests)
    stats: Dict[str, int] = {}
    for index, result, delta, _ in analyze_batch_iter(
        requests,
        jobs=jobs,
        cache_dir=cache_dir,
        summary_cache=summary_cache,
        use_default_store=use_default_store,
    ):
        results[index] = result
        merge_stats(stats, delta)
    return BatchResult(
        results,
        stats,
        seconds=time.perf_counter() - started,
        jobs=1 if (jobs <= 1 or len(requests) <= 1) else jobs,
    )


# --------------------------------------------------------------------------- #
def analyze_batch_iter(
    requests: Sequence[AnalysisRequest],
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    summary_cache: Optional[SummaryCache] = None,
    use_default_store: bool = True,
) -> Iterator[Tuple[int, Union[WCETReport, Dict[Optional[str], WCETReport]], Dict[str, int], float]]:
    """Like :func:`analyze_batch`, but yield each outcome *as it finishes*.

    Yields ``(index, result, cache_stats_delta, seconds)`` tuples in
    **completion order** (serial runs complete in request order; parallel
    runs complete as workers finish).  ``index`` is the request's position in
    ``requests``; ``result`` is a report or a per-mode dict exactly as in
    :class:`BatchResult.results`.  Consumers that need streaming progress
    (the analysis server, incremental sweeps) use this; everyone else keeps
    the batch form.  Cache semantics and results are identical to
    :func:`analyze_batch` — only delivery granularity differs.
    """
    requests = list(requests)
    jobs = resolve_jobs(jobs)

    if jobs > 1 and summary_cache is not None:
        raise ValueError(
            "an in-process summary_cache cannot be shared across pool "
            "workers; pass cache_dir to share a persistent store instead "
            "(or run with jobs=1)"
        )
    if cache_dir is None and use_default_store:
        default_store = configured_store()
        if default_store is not None:
            cache_dir = default_store.path

    if jobs <= 1 or len(requests) <= 1:
        cache = summary_cache
        if cache is None:
            store = SummaryStore(cache_dir) if cache_dir else None
            cache = SummaryCache(store=store)
        for index, request in enumerate(requests):
            before = cache.stats()
            started = time.perf_counter()
            result = _execute(request, cache)
            seconds = time.perf_counter() - started
            after = cache.stats()
            delta = {key: after[key] - before.get(key, 0) for key in after}
            yield index, result, delta, seconds
        return

    # Completion-order delivery needs per-task futures; the plain Pool.map
    # plumbing cannot express that, so the iterator rides on
    # concurrent.futures with the same worker initialiser and chunk-free
    # scheduling (requests are coarse units — chunking buys nothing here).
    import concurrent.futures

    with concurrent.futures.ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_init_batch_worker,
        initargs=(cache_dir,),
    ) as executor:
        futures = {
            executor.submit(_run_request, request): index
            for index, request in enumerate(requests)
        }
        for future in concurrent.futures.as_completed(futures):
            result, delta, seconds = future.result()
            yield futures[future], result, delta, seconds
