"""Per-function block timing tables.

A :class:`BlockTimeTable` collects, for every basic block of a function,

* the static pipeline/cache/memory time bounds of the block's own instructions
  (:class:`~repro.hardware.pipeline.BlockTimeBounds`), and
* the worst-case / best-case execution time contributed by the callees invoked
  from the block (added by the WCET analyzer once callee bounds are known).

The IPET path analysis then weights each block-count variable with
``block WCET + callee WCET``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import TimingAnalysisError
from repro.hardware.pipeline import BlockTimeBounds


@dataclass
class BlockTimeTable:
    """Timing of all blocks of one function."""

    function_name: str
    times: Dict[int, BlockTimeBounds] = field(default_factory=dict)
    callee_wcet: Dict[int, int] = field(default_factory=dict)
    callee_bcet: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def set_block(self, bounds: BlockTimeBounds) -> None:
        self.times[bounds.block_id] = bounds

    def add_callee_cost(self, block_id: int, wcet: int, bcet: int) -> None:
        self.callee_wcet[block_id] = self.callee_wcet.get(block_id, 0) + wcet
        self.callee_bcet[block_id] = self.callee_bcet.get(block_id, 0) + bcet

    # ------------------------------------------------------------------ #
    def block_wcet(self, block_id: int) -> int:
        """WCET of the block's own instructions (excluding callees)."""
        try:
            return self.times[block_id].wcet_cycles
        except KeyError as exc:
            raise TimingAnalysisError(
                f"no timing information for block {block_id:#x} of "
                f"{self.function_name!r}"
            ) from exc

    def block_bcet(self, block_id: int) -> int:
        try:
            return self.times[block_id].bcet_cycles
        except KeyError as exc:
            raise TimingAnalysisError(
                f"no timing information for block {block_id:#x} of "
                f"{self.function_name!r}"
            ) from exc

    def total_wcet(self, block_id: int) -> int:
        """WCET weight of the block in the IPET objective (incl. callees)."""
        return self.block_wcet(block_id) + self.callee_wcet.get(block_id, 0)

    def total_bcet(self, block_id: int) -> int:
        return self.block_bcet(block_id) + self.callee_bcet.get(block_id, 0)

    def wcet_weights(self) -> Dict[int, int]:
        return {block_id: self.total_wcet(block_id) for block_id in self.times}

    def bcet_weights(self) -> Dict[int, int]:
        return {block_id: self.total_bcet(block_id) for block_id in self.times}

    # ------------------------------------------------------------------ #
    def straight_line_wcet(self) -> int:
        """Sum of all block WCETs — a trivial upper bound used in sanity checks."""
        return sum(self.total_wcet(block_id) for block_id in self.times)

    def __len__(self) -> int:
        return len(self.times)
