"""Call-site contexts for context-sensitive callee analysis.

The paper's Section 4.3 repeatedly makes the point that the *same* code has
very different worst-case behaviour in different execution contexts (operating
modes, argument values, buffer sizes).  The analyzer therefore supports
analysing a callee separately per call site, seeding its value analysis with
the argument register values known at that call site.  A :class:`CallContext`
identifies such an analysis instance; the :class:`ContextCache` memoises
results so identical contexts are analysed once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generic, Optional, Tuple, TypeVar

from repro.analysis.domains.interval import Interval

Result = TypeVar("Result")


@dataclass(frozen=True)
class CallContext:
    """Identifies one analysis context of a function.

    ``argument_summary`` is a canonicalised tuple of the argument registers'
    intervals at the call site: two call sites passing the same abstract
    argument values share one context (and one analysis).
    The context-insensitive analysis of a function uses :meth:`default`.
    """

    function: str
    argument_summary: Tuple[Tuple[str, Optional[int], Optional[int]], ...] = ()

    @staticmethod
    def default(function: str) -> "CallContext":
        return CallContext(function=function)

    @staticmethod
    def from_arguments(
        function: str, arguments: Dict[str, Interval]
    ) -> "CallContext":
        summary = tuple(
            (register, interval.lo, interval.hi)
            for register, interval in sorted(arguments.items())
            if not interval.is_top and not interval.is_bottom
        )
        return CallContext(function=function, argument_summary=summary)

    @property
    def is_default(self) -> bool:
        return not self.argument_summary

    def argument_intervals(self) -> Dict[str, Interval]:
        return {
            register: Interval(lo, hi)
            for register, lo, hi in self.argument_summary
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_default:
            return f"{self.function}[*]"
        arguments = ", ".join(
            f"{register}={Interval(lo, hi)}" for register, lo, hi in self.argument_summary
        )
        return f"{self.function}[{arguments}]"


class ContextCache(Generic[Result]):
    """Memoises per-context analysis results (one analysis run's tier 0).

    Hit/miss accounting happens at *lookup* time: a :meth:`get` that finds
    nothing is a miss even if the same context is probed again before its
    first :meth:`put` (repeated probes of an unanalysed context are repeated
    misses, not free).  :meth:`peek` looks up without touching the counters —
    used when replaying cached summaries, which must not distort the
    statistics of the run they are replayed into.
    """

    def __init__(self) -> None:
        self._cache: Dict[CallContext, Result] = {}
        #: Per-function view of ``_cache`` so the per-call-site context-cap
        #: check in ``_callee_report`` is O(1) instead of a scan of every
        #: cached context of every function.
        self._by_function: Dict[str, Dict[CallContext, Result]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, context: CallContext) -> Optional[Result]:
        result = self._cache.get(context)
        if result is not None:
            self.hits += 1
        else:
            self.misses += 1
        return result

    def peek(self, context: CallContext) -> Optional[Result]:
        """Lookup without hit/miss accounting."""
        return self._cache.get(context)

    def put(self, context: CallContext, result: Result) -> Result:
        self._cache[context] = result
        self._by_function.setdefault(context.function, {})[context] = result
        return result

    def contexts_for(self, function: str) -> Dict[CallContext, Result]:
        """All cached contexts of ``function`` (live view; do not mutate)."""
        index = self._by_function.get(function)
        return index if index is not None else {}

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._cache)
