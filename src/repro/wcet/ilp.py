"""Integer linear programming front end for the IPET path analysis.

:class:`ILPProblem` provides a small modelling layer (named variables, linear
constraints, maximise/minimise) and solves through either

* the self-contained two-phase simplex of :mod:`repro.wcet.simplex`, or
* scipy's ``linprog`` (HiGHS) when available (default),

wrapped in a classic branch-and-bound loop for integrality.  IPET systems are
network-flow-like and almost always have integral LP relaxations, so the
branch-and-bound loop usually terminates after the root relaxation; it exists
so that extra annotation constraints (which can break total unimodularity)
still yield correct integer results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InfeasibleILPError, PathAnalysisError, UnboundedILPError
from repro.wcet import simplex

try:  # scipy is an optional (but normally installed) backend
    from scipy.optimize import linprog as _scipy_linprog  # type: ignore
except Exception:  # pragma: no cover - exercised only without scipy
    _scipy_linprog = None

#: Problems with at most this many variables are solved by the in-tree sparse
#: simplex under the "auto" backend: IPET systems of this size solve in well
#: under a millisecond there, while scipy's linprog spends multiples of that
#: on input validation and option handling alone.  Larger systems go to HiGHS,
#: whose constant factor amortises.
_AUTO_SIMPLEX_MAX_VARIABLES = 400


class LinearExpression:
    """A linear combination of problem variables plus a constant."""

    def __init__(self, terms: Optional[Dict[str, float]] = None, constant: float = 0.0):
        self.terms: Dict[str, float] = dict(terms or {})
        self.constant = constant

    # ------------------------------------------------------------------ #
    def add_term(self, variable: str, coefficient: float) -> "LinearExpression":
        self.terms[variable] = self.terms.get(variable, 0.0) + coefficient
        if self.terms[variable] == 0.0:
            del self.terms[variable]
        return self

    def scaled(self, factor: float) -> "LinearExpression":
        return LinearExpression(
            {variable: coefficient * factor for variable, coefficient in self.terms.items()},
            self.constant * factor,
        )

    def plus(self, other: "LinearExpression") -> "LinearExpression":
        result = LinearExpression(dict(self.terms), self.constant + other.constant)
        for variable, coefficient in other.terms.items():
            result.add_term(variable, coefficient)
        return result

    def evaluate(self, assignment: Dict[str, float]) -> float:
        return self.constant + sum(
            coefficient * assignment.get(variable, 0.0)
            for variable, coefficient in self.terms.items()
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{coefficient:+g}*{variable}" for variable, coefficient in sorted(self.terms.items())]
        if self.constant:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts) if parts else "0"


@dataclass
class Constraint:
    """``expression (<=|==|>=) bound``."""

    expression: LinearExpression
    relation: str
    bound: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.relation not in ("<=", "==", ">="):
            raise PathAnalysisError(f"unsupported constraint relation {self.relation!r}")


@dataclass
class ILPSolution:
    """Optimal solution of an ILP."""

    objective: float
    values: Dict[str, float]
    status: str = "optimal"
    #: Number of branch-and-bound nodes explored (1 = integral root relaxation).
    nodes: int = 1
    #: Simplex pivots spent producing this solution (0 for the scipy backend).
    pivots: int = 0

    def value(self, variable: str) -> float:
        return self.values.get(variable, 0.0)

    def int_value(self, variable: str) -> int:
        return int(round(self.value(variable)))


class ILPProblem:
    """A named-variable ILP: maximise/minimise a linear objective."""

    def __init__(self, name: str = "ilp", maximise: bool = True, engine: str = "fused"):
        self.name = name
        self.maximise = maximise
        #: Simplex tableau engine ("fused" dense-row storage or "reference").
        self.engine = engine
        self._variables: Dict[str, Tuple[float, Optional[float], bool]] = {}
        self._order: List[str] = []
        self.constraints: List[Constraint] = []
        self.objective = LinearExpression()

    # ------------------------------------------------------------------ #
    # Modelling
    # ------------------------------------------------------------------ #
    def add_variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: Optional[float] = None,
        integer: bool = True,
    ) -> str:
        if name in self._variables:
            return name
        if lower < 0:
            raise PathAnalysisError("ILP variables must have non-negative lower bounds")
        self._variables[name] = (lower, upper, integer)
        self._order.append(name)
        return name

    def has_variable(self, name: str) -> bool:
        return name in self._variables

    @property
    def variables(self) -> List[str]:
        return list(self._order)

    def set_objective_coefficient(self, variable: str, coefficient: float) -> None:
        if variable not in self._variables:
            raise PathAnalysisError(f"unknown ILP variable {variable!r}")
        self.objective.add_term(variable, coefficient)

    def add_constraint(
        self,
        expression: LinearExpression,
        relation: str,
        bound: float,
        name: str = "",
    ) -> Constraint:
        for variable in expression.terms:
            if variable not in self._variables:
                raise PathAnalysisError(f"unknown ILP variable {variable!r} in constraint {name!r}")
        constraint = Constraint(expression, relation, bound, name)
        self.constraints.append(constraint)
        return constraint

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve(self, backend: str = "auto", integer: bool = True) -> ILPSolution:
        """Solve the problem.

        ``backend`` is one of ``"auto"`` (scipy if present, else simplex),
        ``"scipy"`` or ``"simplex"``.  ``integer=False`` returns the LP
        relaxation (useful for tests and diagnostics).
        """
        backend = self._resolve_backend(backend)

        relaxed = self._solve_relaxation(backend, extra_bounds={})
        if not integer:
            return relaxed

        # Branch and bound on fractional variables.  The root relaxation has
        # already been solved above; IPET systems are network-flow-like, so it
        # is almost always integral and the loop ends after inspecting it.
        best: Optional[ILPSolution] = None
        nodes = 0
        total_pivots = relaxed.pivots
        stack: List[Tuple[Dict[str, Tuple[float, Optional[float]]], Optional[ILPSolution]]] = [
            ({}, relaxed)
        ]
        while stack:
            extra, presolved = stack.pop()
            nodes += 1
            if nodes > 2000:
                raise PathAnalysisError(
                    "branch-and-bound node limit exceeded; the ILP is unexpectedly hard"
                )
            if presolved is not None:
                solution = presolved
            else:
                try:
                    solution = self._solve_relaxation(backend, extra_bounds=extra)
                    total_pivots += solution.pivots
                except InfeasibleILPError:
                    continue
            if best is not None:
                if self.maximise and solution.objective <= best.objective + 1e-6:
                    continue
                if not self.maximise and solution.objective >= best.objective - 1e-6:
                    continue
            fractional = self._first_fractional(solution)
            if fractional is None:
                rounded = {
                    variable: float(round(value))
                    for variable, value in solution.values.items()
                }
                candidate = ILPSolution(
                    objective=self.objective.evaluate(rounded),
                    values=rounded,
                    nodes=nodes,
                )
                if (
                    best is None
                    or (self.maximise and candidate.objective > best.objective)
                    or (not self.maximise and candidate.objective < best.objective)
                ):
                    best = candidate
                continue
            variable, value = fractional
            lower, upper, _ = self._variables[variable]
            current = extra.get(variable, (lower, upper))
            floor_branch = dict(extra)
            floor_branch[variable] = (current[0], math.floor(value))
            ceil_branch = dict(extra)
            ceil_branch[variable] = (math.ceil(value), current[1])
            stack.append((floor_branch, None))
            stack.append((ceil_branch, None))

        if best is None:
            raise InfeasibleILPError(
                f"{self.name}: no integral solution exists for the path analysis ILP"
            )
        best.nodes = nodes
        best.pivots = total_pivots
        return best

    # ------------------------------------------------------------------ #
    def _resolve_backend(self, backend: str) -> str:
        if backend == "auto":
            if _scipy_linprog is None or len(self._order) <= _AUTO_SIMPLEX_MAX_VARIABLES:
                return "simplex"
            return "scipy"
        if backend == "scipy" and _scipy_linprog is None:
            raise PathAnalysisError("scipy backend requested but scipy is unavailable")
        return backend

    def _default_bounds(self) -> List[Tuple[float, Optional[float]]]:
        return [
            (self._variables[variable][0], self._variables[variable][1])
            for variable in self._order
        ]

    def _system_signature(self):
        """Hashable identity of the constraint system (excluding objective)."""
        return (
            tuple(self._order),
            tuple(sorted(self._variables.items())),
            tuple(
                (
                    constraint.relation,
                    constraint.bound,
                    constraint.expression.constant,
                    tuple(sorted(constraint.expression.terms.items())),
                )
                for constraint in self.constraints
            ),
        )

    def _first_fractional(self, solution: ILPSolution) -> Optional[Tuple[str, float]]:
        for variable in self._order:
            _, _, integer = self._variables[variable]
            if not integer:
                continue
            value = solution.values.get(variable, 0.0)
            if abs(value - round(value)) > 1e-6:
                return variable, value
        return None

    def _solve_relaxation(
        self, backend: str, extra_bounds: Dict[str, Tuple[float, Optional[float]]]
    ) -> ILPSolution:
        order = self._order
        index = {variable: position for position, variable in enumerate(order)}
        objective = [0.0] * len(order)
        for variable, coefficient in self.objective.terms.items():
            objective[index[variable]] = coefficient

        # Variable bounds.
        bounds: List[Tuple[float, Optional[float]]] = []
        for variable in order:
            lower, upper, _ = self._variables[variable]
            if variable in extra_bounds:
                extra_lower, extra_upper = extra_bounds[variable]
                lower = max(lower, extra_lower)
                if upper is None:
                    upper = extra_upper
                elif extra_upper is not None:
                    upper = min(upper, extra_upper)
            bounds.append((lower, upper))

        if backend == "scipy":
            return self._solve_scipy_dense(objective, index, bounds)
        return self._solve_simplex_sparse(objective, index, bounds)

    def _solve_scipy_dense(self, objective, index, bounds) -> ILPSolution:
        order = self._order
        a_ub: List[List[float]] = []
        b_ub: List[float] = []
        a_eq: List[List[float]] = []
        b_eq: List[float] = []

        def row_of(expression: LinearExpression) -> List[float]:
            row = [0.0] * len(order)
            for variable, coefficient in expression.terms.items():
                row[index[variable]] = coefficient
            return row

        for constraint in self.constraints:
            row = row_of(constraint.expression)
            bound = constraint.bound - constraint.expression.constant
            if constraint.relation == "<=":
                a_ub.append(row)
                b_ub.append(bound)
            elif constraint.relation == ">=":
                a_ub.append([-value for value in row])
                b_ub.append(-bound)
            else:
                a_eq.append(row)
                b_eq.append(bound)
        return self._solve_scipy(objective, a_ub, b_ub, a_eq, b_eq, bounds)

    # ------------------------------------------------------------------ #
    def _solve_scipy(self, objective, a_ub, b_ub, a_eq, b_eq, bounds) -> ILPSolution:
        sign = -1.0 if self.maximise else 1.0
        result = _scipy_linprog(
            c=[sign * value for value in objective],
            A_ub=a_ub or None,
            b_ub=b_ub or None,
            A_eq=a_eq or None,
            b_eq=b_eq or None,
            bounds=bounds,
            method="highs",
        )
        if result.status == 2:
            raise InfeasibleILPError(f"{self.name}: path analysis ILP is infeasible")
        if result.status == 3:
            raise UnboundedILPError(
                f"{self.name}: path analysis ILP is unbounded — some loop has no "
                "iteration bound constraint"
            )
        if not result.success:
            raise PathAnalysisError(f"{self.name}: LP solver failed: {result.message}")
        values = {
            variable: float(value) for variable, value in zip(self._order, result.x)
        }
        return ILPSolution(
            objective=self.objective.evaluate(values) ,
            values=values,
        )

    def _sparse_system(self, index, bounds):
        """Constraint rows + bound rows in the sparse simplex input form."""
        a_ub: List[Dict[int, float]] = []
        b_ub: List[float] = []
        a_eq: List[Dict[int, float]] = []
        b_eq: List[float] = []
        for constraint in self.constraints:
            row = {
                index[variable]: coefficient
                for variable, coefficient in constraint.expression.terms.items()
            }
            bound = constraint.bound - constraint.expression.constant
            if constraint.relation == "<=":
                a_ub.append(row)
                b_ub.append(bound)
            elif constraint.relation == ">=":
                a_ub.append({position: -value for position, value in row.items()})
                b_ub.append(-bound)
            else:
                a_eq.append(row)
                b_eq.append(bound)
        # The bespoke simplex only supports x >= 0; encode other bounds as rows.
        for position, (lower, upper) in enumerate(bounds):
            if lower > 0:
                a_ub.append({position: -1.0})
                b_ub.append(-lower)
            if upper is not None:
                a_ub.append({position: 1.0})
                b_ub.append(upper)
        return a_ub, b_ub, a_eq, b_eq

    def _solve_simplex_sparse(self, objective, index, bounds) -> ILPSolution:
        """Hand constraint rows to the bespoke sparse/dense-row simplex."""
        a_ub, b_ub, a_eq, b_eq = self._sparse_system(index, bounds)
        result = simplex.solve_sparse_lp(
            objective, a_ub, b_ub, a_eq, b_eq,
            maximise=self.maximise, engine=self.engine,
        )
        if result.status == "infeasible":
            raise InfeasibleILPError(f"{self.name}: path analysis ILP is infeasible")
        if result.status == "unbounded":
            raise UnboundedILPError(
                f"{self.name}: path analysis ILP is unbounded — some loop has no "
                "iteration bound constraint"
            )
        values = {
            variable: float(value)
            for variable, value in zip(self._order, result.values or [])
        }
        return ILPSolution(
            objective=self.objective.evaluate(values),
            values=values,
            pivots=result.pivots,
        )


def solve_ilp(problem: ILPProblem, backend: str = "auto") -> ILPSolution:
    """Convenience wrapper around :meth:`ILPProblem.solve`."""
    return problem.solve(backend=backend)


def solve_ilp_pair(
    first: ILPProblem, second: ILPProblem, backend: str = "auto"
) -> Tuple[ILPSolution, ILPSolution]:
    """Solve two ILPs that share variables, bounds and constraints.

    The IPET path analysis solves each function's constraint system twice —
    maximise for the WCET bound, minimise for the BCET bound.  Phase 1 of the
    two-phase simplex (finding a feasible basis) never inspects the
    objective, so under the bespoke backend it runs once and both phase-2
    optimisations start from the same prepared tableau, giving bit-identical
    results to two independent solves at roughly half the pivot count.

    Falls back to two independent solves for the scipy backend, for problems
    whose systems differ, or when a root relaxation turns out fractional
    (then full branch-and-bound handles that objective).
    """
    resolved = first._resolve_backend(backend)
    if resolved != "simplex" or first._system_signature() != second._system_signature():
        return first.solve(backend=backend), second.solve(backend=backend)

    order = first._order
    index = {variable: position for position, variable in enumerate(order)}
    bounds = first._default_bounds()
    a_ub, b_ub, a_eq, b_eq = first._sparse_system(index, bounds)
    prepared = simplex.prepare_sparse_tableau(
        len(order), a_ub, b_ub, a_eq, b_eq, engine=first.engine
    )

    solutions: List[ILPSolution] = []
    # Phase 1 runs once for the pair; attribute its pivots to the first
    # solution so a sum over both counts every pivot exactly once.
    phase1_pivots = prepared.pivots
    for problem in (first, second):
        if not prepared.feasible:
            raise InfeasibleILPError(f"{problem.name}: path analysis ILP is infeasible")
        objective = [0.0] * len(order)
        for variable, coefficient in problem.objective.terms.items():
            objective[index[variable]] = coefficient
        result = simplex.optimise_prepared(
            prepared, objective, problem.maximise, clone=True
        )
        if result.status == "infeasible":
            raise InfeasibleILPError(f"{problem.name}: path analysis ILP is infeasible")
        if result.status == "unbounded":
            raise UnboundedILPError(
                f"{problem.name}: path analysis ILP is unbounded — some loop has no "
                "iteration bound constraint"
            )
        values = {
            variable: float(value)
            for variable, value in zip(order, result.values or [])
        }
        pivots = phase1_pivots + result.pivots
        phase1_pivots = 0
        relaxed = ILPSolution(
            objective=problem.objective.evaluate(values), values=values
        )
        if problem._first_fractional(relaxed) is not None:
            # Rare: hand this objective to the full branch-and-bound.
            solutions.append(problem.solve(backend="simplex"))
            continue
        rounded = {
            variable: float(round(value)) for variable, value in values.items()
        }
        solutions.append(
            ILPSolution(
                objective=problem.objective.evaluate(rounded),
                values=rounded,
                nodes=1,
                pivots=pivots,
            )
        )
    return solutions[0], solutions[1]
