"""Implicit Path Enumeration Technique (IPET) path analysis.

The final phase of Figure 1: given per-block execution-time weights, loop
bounds and flow facts, find the most expensive (for WCET) or cheapest (for
BCET) assignment of execution counts to basic blocks that is consistent with
the control-flow structure.  The formulation is the classic one:

* one non-negative integer variable per basic block (``x_<addr>``) and per CFG
  edge (``f_<src>_<dst>``), including the virtual entry and exit edges;
* flow conservation: the count of a block equals the sum of its incoming edge
  frequencies and the sum of its outgoing edge frequencies;
* the virtual entry edge executes exactly once per task activation;
* every loop contributes ``sum(back edges) <= bound * sum(entry edges)``;
* annotations contribute infeasibility (``x = 0``) and linear flow constraints;
* the objective is ``sum(weight_b * x_b)``.

If a loop has no bound the ILP is unbounded — which is exactly the situation
the paper describes as "no WCET bound can be computed at all"; the error
message lists the offending loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import PathAnalysisError, UnboundedILPError
from repro.cfg.graph import ENTRY, EXIT, ControlFlowGraph
from repro.cfg.loops import LoopForest
from repro.wcet.ilp import ILPProblem, ILPSolution, LinearExpression, solve_ilp_pair


@dataclass(frozen=True)
class ResolvedFlowConstraint:
    """A flow constraint whose locations have been resolved to block ids."""

    terms: Tuple[Tuple[int, int], ...]
    relation: str
    bound: int
    name: str = ""


@dataclass
class PathAnalysisResult:
    """Outcome of one IPET solve."""

    function_name: str
    objective: str               # "wcet" or "bcet"
    bound_cycles: int
    block_counts: Dict[int, int] = field(default_factory=dict)
    edge_counts: Dict[Tuple[int, int], int] = field(default_factory=dict)
    ilp_nodes: int = 1
    #: Simplex pivots spent on this objective (0 for the scipy backend).
    ilp_pivots: int = 0

    def count_of(self, block_id: int) -> int:
        return self.block_counts.get(block_id, 0)

    def worst_case_blocks(self) -> List[int]:
        """Blocks on the critical path (non-zero execution count), sorted."""
        return sorted(block for block, count in self.block_counts.items() if count > 0)


def _block_variable(block_id: int) -> str:
    return f"x_{block_id:#x}"


def _edge_variable(source: int, target: int) -> str:
    def name(node: int) -> str:
        if node == ENTRY:
            return "entry"
        if node == EXIT:
            return "exit"
        return f"{node:#x}"

    return f"f_{name(source)}_{name(target)}"


class IPETBuilder:
    """Builds and solves the IPET ILP for one function."""

    def __init__(self, cfg: ControlFlowGraph, loops: LoopForest, engine: str = "fused"):
        self.cfg = cfg
        self.loops = loops
        self.engine = engine

    # ------------------------------------------------------------------ #
    def build(
        self,
        block_weights: Dict[int, int],
        loop_bounds: Dict[int, int],
        infeasible_blocks: Iterable[int] = (),
        infeasible_edges: Iterable[Tuple[int, int]] = (),
        flow_constraints: Sequence[ResolvedFlowConstraint] = (),
        maximise: bool = True,
    ) -> ILPProblem:
        """Construct the ILP.

        ``loop_bounds`` maps loop headers to the maximum number of back-edge
        executions per loop entry.  Missing bounds are not detected here; they
        surface as an unbounded ILP when solving.
        """
        problem = ILPProblem(
            name=f"ipet:{self.cfg.function_name}:{'wcet' if maximise else 'bcet'}",
            maximise=maximise,
            engine=self.engine,
        )

        blocks = self.cfg.node_ids()
        edges = self.cfg.edges()

        for block_id in blocks:
            problem.add_variable(_block_variable(block_id))
        for edge in edges:
            problem.add_variable(_edge_variable(edge.source, edge.target))

        # Objective.
        for block_id in blocks:
            weight = block_weights.get(block_id, 0)
            if weight:
                problem.set_objective_coefficient(_block_variable(block_id), weight)

        # The task is activated exactly once.
        entry_edges = self.cfg.out_edges(ENTRY)
        if not entry_edges:
            raise PathAnalysisError(
                f"{self.cfg.function_name}: control-flow graph has no entry edge"
            )
        entry_expression = LinearExpression()
        for edge in entry_edges:
            entry_expression.add_term(_edge_variable(edge.source, edge.target), 1.0)
        problem.add_constraint(entry_expression, "==", 1, name="entry-once")

        exit_edges = self.cfg.in_edges(EXIT)
        if exit_edges:
            exit_expression = LinearExpression()
            for edge in exit_edges:
                exit_expression.add_term(_edge_variable(edge.source, edge.target), 1.0)
            problem.add_constraint(exit_expression, "==", 1, name="exit-once")

        # Flow conservation per block.
        for block_id in blocks:
            incoming = LinearExpression()
            for edge in self.cfg.in_edges(block_id):
                incoming.add_term(_edge_variable(edge.source, edge.target), 1.0)
            incoming.add_term(_block_variable(block_id), -1.0)
            problem.add_constraint(incoming, "==", 0, name=f"in-flow:{block_id:#x}")

            outgoing = LinearExpression()
            for edge in self.cfg.out_edges(block_id):
                outgoing.add_term(_edge_variable(edge.source, edge.target), 1.0)
            outgoing.add_term(_block_variable(block_id), -1.0)
            problem.add_constraint(outgoing, "==", 0, name=f"out-flow:{block_id:#x}")

        # Loop bounds.
        for loop in self.loops.loops:
            bound = loop_bounds.get(loop.header)
            if bound is None:
                continue
            expression = LinearExpression()
            back_edges = set(loop.back_edges)
            for tail, head in back_edges:
                expression.add_term(_edge_variable(tail, head), 1.0)
            # A natural loop is entered through its header; an irreducible
            # cycle through any of its entry nodes.  Anchoring the constraint
            # on the header alone would find no entry edge for a cycle whose
            # external predecessors all target a different entry — forcing
            # zero iterations and undercutting the bound.
            entry_nodes = loop.entries or {loop.header}
            entry_edges_of_loop = [
                (pred, node)
                for node in sorted(entry_nodes)
                for pred in self.cfg.predecessors(node)
                if pred not in loop.blocks
            ]
            if not entry_edges_of_loop:
                # Unreachable loop: force zero iterations.
                problem.add_constraint(
                    expression, "<=", 0, name=f"loop-bound:{loop.header:#x}"
                )
                continue
            for source, target in entry_edges_of_loop:
                expression.add_term(_edge_variable(source, target), -float(bound))
            problem.add_constraint(
                expression, "<=", 0, name=f"loop-bound:{loop.header:#x}"
            )

        # Infeasible blocks and edges.
        for block_id in infeasible_blocks:
            problem.add_constraint(
                LinearExpression({_block_variable(block_id): 1.0}),
                "==",
                0,
                name=f"infeasible-block:{block_id:#x}",
            )
        for source, target in infeasible_edges:
            variable = _edge_variable(source, target)
            if problem.has_variable(variable):
                problem.add_constraint(
                    LinearExpression({variable: 1.0}),
                    "==",
                    0,
                    name=f"infeasible-edge:{variable}",
                )

        # Designer flow constraints (counts are per invocation; the entry edge
        # executes exactly once, so the plain bound is already normalised).
        for constraint in flow_constraints:
            expression = LinearExpression()
            for block_id, coefficient in constraint.terms:
                expression.add_term(_block_variable(block_id), float(coefficient))
            problem.add_constraint(
                expression,
                constraint.relation,
                constraint.bound,
                name=constraint.name or "flow-fact",
            )

        return problem

    # ------------------------------------------------------------------ #
    def solve(
        self,
        block_weights: Dict[int, int],
        loop_bounds: Dict[int, int],
        infeasible_blocks: Iterable[int] = (),
        infeasible_edges: Iterable[Tuple[int, int]] = (),
        flow_constraints: Sequence[ResolvedFlowConstraint] = (),
        maximise: bool = True,
        backend: str = "auto",
    ) -> PathAnalysisResult:
        problem = self.build(
            block_weights,
            loop_bounds,
            infeasible_blocks=infeasible_blocks,
            infeasible_edges=infeasible_edges,
            flow_constraints=flow_constraints,
            maximise=maximise,
        )
        try:
            solution = problem.solve(backend=backend)
        except UnboundedILPError as exc:
            unbounded = [
                f"{loop.header:#x}" for loop in self.loops.loops
                if loop.header not in loop_bounds
            ]
            raise UnboundedILPError(
                f"{self.cfg.function_name}: the path analysis ILP is unbounded; "
                f"loops without iteration bounds: {', '.join(unbounded) or 'unknown'}"
            ) from exc
        return self._result_from_solution(solution, maximise)

    def solve_pair(
        self,
        wcet_weights: Dict[int, int],
        bcet_weights: Dict[int, int],
        loop_bounds: Dict[int, int],
        infeasible_blocks: Iterable[int] = (),
        infeasible_edges: Iterable[Tuple[int, int]] = (),
        flow_constraints: Sequence[ResolvedFlowConstraint] = (),
        backend: str = "auto",
    ) -> Tuple[PathAnalysisResult, PathAnalysisResult]:
        """Solve the WCET (maximise) and BCET (minimise) objectives together.

        Both objectives run over the identical constraint system, so the
        bespoke simplex backend shares one phase-1 feasibility basis between
        them (see :func:`repro.wcet.ilp.solve_ilp_pair`); results are
        identical to two separate :meth:`solve` calls.
        """
        infeasible_blocks = tuple(infeasible_blocks)
        infeasible_edges = tuple(infeasible_edges)
        wcet_problem = self.build(
            wcet_weights,
            loop_bounds,
            infeasible_blocks=infeasible_blocks,
            infeasible_edges=infeasible_edges,
            flow_constraints=flow_constraints,
            maximise=True,
        )
        bcet_problem = self.build(
            bcet_weights,
            loop_bounds,
            infeasible_blocks=infeasible_blocks,
            infeasible_edges=infeasible_edges,
            flow_constraints=flow_constraints,
            maximise=False,
        )
        try:
            wcet_solution, bcet_solution = solve_ilp_pair(
                wcet_problem, bcet_problem, backend=backend
            )
        except UnboundedILPError as exc:
            unbounded = [
                f"{loop.header:#x}" for loop in self.loops.loops
                if loop.header not in loop_bounds
            ]
            raise UnboundedILPError(
                f"{self.cfg.function_name}: the path analysis ILP is unbounded; "
                f"loops without iteration bounds: {', '.join(unbounded) or 'unknown'}"
            ) from exc
        return (
            self._result_from_solution(wcet_solution, True),
            self._result_from_solution(bcet_solution, False),
        )

    def _result_from_solution(
        self, solution: ILPSolution, maximise: bool
    ) -> PathAnalysisResult:
        block_counts = {
            block_id: solution.int_value(_block_variable(block_id))
            for block_id in self.cfg.node_ids()
        }
        edge_counts = {
            (edge.source, edge.target): solution.int_value(
                _edge_variable(edge.source, edge.target)
            )
            for edge in self.cfg.edges()
        }
        bound = int(round(solution.objective))
        return PathAnalysisResult(
            function_name=self.cfg.function_name,
            objective="wcet" if maximise else "bcet",
            bound_cycles=bound,
            block_counts=block_counts,
            edge_counts=edge_counts,
            ilp_nodes=solution.nodes,
            ilp_pivots=solution.pivots,
        )
