"""Structured reports produced by the WCET analyzer.

A :class:`WCETReport` records, for one analysed task (entry function):

* the WCET and BCET bounds in processor cycles,
* one :class:`FunctionReport` per analysed function (loop bounds, cache
  classification statistics, per-block times, worst-case path),
* a :class:`ChallengeReport` separating the *tier-one* problems (things that
  would have prevented a bound altogether and had to be solved by annotations)
  from the *tier-two* precision losses (imprecise memory accesses, unclassified
  cache accesses, annotation-supplied loop bounds), mirroring Section 3.2 of
  the paper,
* per-phase wall-clock timings matching the phase structure of Figure 1.

Every report type here serialises to a versioned, stable JSON form and back
exactly — see :mod:`repro.api.serialize`; the ``to_json``/``from_json``
methods below are thin conveniences over that module.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.hardware.pipeline import BlockTimeBounds


@dataclass
class LoopReport:
    """One loop of one function, with how (or whether) it was bounded."""

    function: str
    header: int
    bound: Optional[int]
    source: str                 # "analysis", "annotation", "unbounded"
    irreducible: bool = False
    failure_reason: str = ""
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        state = "unbounded" if self.bound is None else f"<= {self.bound} iterations"
        extra = " (irreducible)" if self.irreducible else ""
        return f"{self.function}@{self.header:#x}: {state} [{self.source}]{extra}"


@dataclass
class PhaseTiming:
    """Wall-clock duration of one analysis phase (Figure 1 box)."""

    phase: str
    seconds: float
    detail: str = ""
    #: Work counter attributing the wall time: fixpoint solver iterations
    #: for "loop/value analysis", simplex pivots for "path analysis",
    #: 0 where no counter applies.
    iterations: int = 0


@dataclass
class ChallengeReport:
    """Tier-one / tier-two analysis challenges encountered (Section 3.2)."""

    tier_one: List[str] = field(default_factory=list)
    tier_two: List[str] = field(default_factory=list)

    def add_tier_one(self, message: str) -> None:
        self.tier_one.append(message)

    def add_tier_two(self, message: str) -> None:
        self.tier_two.append(message)

    @property
    def is_clean(self) -> bool:
        return not self.tier_one and not self.tier_two

    def to_json(self) -> dict:
        from repro.api import serialize

        return serialize.to_json(self)

    @classmethod
    def from_json(cls, data: dict) -> "ChallengeReport":
        from repro.api import serialize

        return serialize.from_json(data, cls)


@dataclass
class FunctionReport:
    """Analysis results of one function (in one context)."""

    name: str
    wcet_cycles: int
    bcet_cycles: int
    loop_reports: List[LoopReport] = field(default_factory=list)
    block_times: Dict[int, BlockTimeBounds] = field(default_factory=dict)
    block_counts: Dict[int, int] = field(default_factory=dict)
    icache_summary: Dict[str, int] = field(default_factory=dict)
    dcache_summary: Dict[str, int] = field(default_factory=dict)
    unreachable_blocks: List[int] = field(default_factory=list)
    imprecise_accesses: int = 0
    unknown_accesses: int = 0
    callee_wcet: Dict[int, int] = field(default_factory=dict)
    ilp_nodes: int = 1
    context: str = ""

    def worst_case_blocks(self) -> List[int]:
        return sorted(b for b, count in self.block_counts.items() if count > 0)

    def total_loop_bound_iterations(self) -> int:
        return sum(r.bound or 0 for r in self.loop_reports)

    def to_json(self) -> dict:
        from repro.api import serialize

        return serialize.to_json(self)

    @classmethod
    def from_json(cls, data: dict) -> "FunctionReport":
        from repro.api import serialize

        return serialize.from_json(data, cls)


@dataclass
class WCETReport:
    """Complete report for one analysed task."""

    entry: str
    processor: str
    wcet_cycles: int
    bcet_cycles: int
    functions: Dict[str, FunctionReport] = field(default_factory=dict)
    phases: List[PhaseTiming] = field(default_factory=list)
    challenges: ChallengeReport = field(default_factory=ChallengeReport)
    mode: Optional[str] = None
    error_scenario: Optional[str] = None
    annotation_summary: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def entry_report(self) -> FunctionReport:
        return self.functions[self.entry]

    def function_names(self) -> List[str]:
        return sorted(self.functions)

    def phase_seconds(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for timing in self.phases:
            totals[timing.phase] = totals.get(timing.phase, 0.0) + timing.seconds
        return totals

    def loop_reports(self) -> List[LoopReport]:
        result: List[LoopReport] = []
        for function_report in self.functions.values():
            result.extend(function_report.loop_reports)
        return result

    def slim(self) -> "WCETReport":
        """A copy without the per-block timing tables.

        ``block_times`` dominates a report's pickled size (one
        :class:`~repro.hardware.pipeline.BlockTimeBounds` per basic block);
        everything a caller aggregating sweep results needs — bounds, loop
        reports, cache summaries, worst-case path block counts, challenges —
        survives.  This is what parallel sweeps ship back across the worker
        pool when ``keep_reports=True``.
        """
        slim_functions = {
            name: replace(function_report, block_times={})
            for name, function_report in self.functions.items()
        }
        return replace(self, functions=slim_functions)

    def to_json(self) -> dict:
        """Versioned JSON form (round-trips exactly via :meth:`from_json`)."""
        from repro.api import serialize

        return serialize.to_json(self)

    @classmethod
    def from_json(cls, data: dict) -> "WCETReport":
        from repro.api import serialize

        return serialize.from_json(data, cls)

    # ------------------------------------------------------------------ #
    def format_text(self) -> str:
        """Human-readable multi-line report."""
        lines: List[str] = []
        title = f"WCET analysis of task {self.entry!r} on {self.processor}"
        if self.mode:
            title += f" [mode: {self.mode}]"
        if self.error_scenario:
            title += f" [error scenario: {self.error_scenario}]"
        lines.append(title)
        lines.append("=" * len(title))
        lines.append(f"WCET bound : {self.wcet_cycles} cycles")
        lines.append(f"BCET bound : {self.bcet_cycles} cycles")
        lines.append("")

        lines.append("Analysis phases (Figure 1):")
        for timing in self.phases:
            detail = timing.detail
            if timing.iterations:
                unit = "pivots" if timing.phase == "path analysis" else "iterations"
                counter = f"{timing.iterations} {unit}"
                detail = f"{detail} ({counter})" if detail else counter
            lines.append(f"  {timing.phase:<22s} {timing.seconds * 1000.0:8.2f} ms  {detail}")
        lines.append("")

        lines.append("Per-function bounds:")
        for name in sorted(self.functions):
            report = self.functions[name]
            lines.append(
                f"  {name:<24s} WCET {report.wcet_cycles:>8d}  BCET {report.bcet_cycles:>8d}"
                f"  (i$ {report.icache_summary}, d$ {report.dcache_summary})"
            )
        lines.append("")

        loop_reports = self.loop_reports()
        if loop_reports:
            lines.append("Loop bounds:")
            for loop in loop_reports:
                lines.append(f"  {loop}")
            lines.append("")

        if self.challenges.tier_one:
            lines.append("Tier-one challenges (resolved via annotations or fatal):")
            for item in self.challenges.tier_one:
                lines.append(f"  - {item}")
            lines.append("")
        if self.challenges.tier_two:
            lines.append("Tier-two challenges (precision losses):")
            for item in self.challenges.tier_two:
                lines.append(f"  - {item}")
            lines.append("")
        if self.annotation_summary:
            lines.append(f"Annotations used: {self.annotation_summary}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WCETReport({self.entry!r}, wcet={self.wcet_cycles}, "
            f"bcet={self.bcet_cycles}, functions={len(self.functions)})"
        )
