"""A small, dependency-free two-phase simplex solver over sparse rows.

The IPET path analysis produces linear programs with a few dozen variables; we
solve them either with this solver or with scipy's ``linprog`` (HiGHS) backend
(:mod:`repro.wcet.ilp` chooses).  Having our own implementation keeps the
library usable without scipy and gives the test-suite a second, independent
solver to cross-check against.

The solver handles problems of the form::

    maximise    c·x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                x >= 0

using the standard two-phase primal simplex method with Bland's pivoting rule
(which guarantees termination).

Representation
--------------

IPET tableaus are network-flow-like: each structural constraint mentions only
the handful of edges around one basic block, so the dense tableau is almost
entirely zeros (and the slack/artificial columns make it wider still).  Rows
are therefore stored as ``{column: coefficient}`` dicts with the right-hand
side kept separately: a pivot touches only the nonzero entries of the pivot
row and the rows that actually contain the pivot column.  The arithmetic per
touched entry is exactly the dense update ``row[c] -= factor * pivot[c]``, so
results are bit-identical to the dense implementation — including fill-in and
the tiny cancellation residues the epsilon comparisons were tuned for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InfeasibleILPError, PathAnalysisError, UnboundedILPError

_EPSILON = 1e-9

#: A sparse tableau row: column index -> nonzero coefficient.
SparseRow = Dict[int, float]


@dataclass
class SimplexResult:
    """Solution of a linear program."""

    status: str               # "optimal", "infeasible", "unbounded"
    objective: float = 0.0
    values: Optional[List[float]] = None


def _build_column_index(rows: List[SparseRow]) -> Dict[int, set]:
    """``column -> {row indices with a stored entry}`` for the whole tableau.

    Kept additively up to date across pivots (entries that cancel to ~0 stay
    registered, exactly as the dense tableau kept explicit zeros): a lookup
    may yield a structurally-zero row, but never misses a nonzero one.
    """
    index: Dict[int, set] = {}
    for r, row in enumerate(rows):
        for column in row:
            index.setdefault(column, set()).add(r)
    return index


def _pivot(
    rows: List[SparseRow],
    rhs: List[float],
    basis: List[int],
    col_rows: Dict[int, set],
    row: int,
    col: int,
) -> None:
    """Pivot on ``(row, col)``: normalise the pivot row, eliminate elsewhere."""
    pivot_row = rows[row]
    pivot_value = pivot_row[col]
    if pivot_value != 1.0:
        for column in pivot_row:
            pivot_row[column] /= pivot_value
        rhs[row] /= pivot_value
    pivot_items = list(pivot_row.items())
    pivot_rhs = rhs[row]
    for r in list(col_rows.get(col, ())):
        if r == row:
            continue
        current = rows[r]
        factor = current.get(col)
        if factor is not None and (factor > _EPSILON or factor < -_EPSILON):
            get = current.get
            for column, value in pivot_items:
                existing = get(column)
                if existing is None:
                    current[column] = 0.0 - factor * value
                    col_rows.setdefault(column, set()).add(r)
                else:
                    current[column] = existing - factor * value
            rhs[r] -= factor * pivot_rhs
    basis[row] = col


def _run_simplex(
    rows: List[SparseRow],
    rhs: List[float],
    objective: SparseRow,
    objective_rhs: List[float],
    basis: List[int],
    col_rows: Dict[int, set],
    num_columns: int,
) -> str:
    """Run primal simplex; ``objective``/``objective_rhs[0]`` is the cost row.

    Returns "optimal" or "unbounded".  Uses Bland's rule to avoid cycling.
    """
    max_pivots = 20_000
    for _ in range(max_pivots):
        # Bland's rule: choose the lowest-index column with a negative reduced cost.
        pivot_col = -1
        for col, value in objective.items():
            if value < -_EPSILON and col < num_columns and (
                pivot_col < 0 or col < pivot_col
            ):
                pivot_col = col
        if pivot_col < 0:
            return "optimal"
        # Ratio test over the rows that actually carry the pivot column
        # (ascending row index, so Bland tie-breaking matches a full scan).
        pivot_row = -1
        best_ratio = None
        for row in sorted(col_rows.get(pivot_col, ())):
            coefficient = rows[row].get(pivot_col, 0.0)
            if coefficient > _EPSILON:
                ratio = rhs[row] / coefficient
                if best_ratio is None or ratio < best_ratio - _EPSILON or (
                    abs(ratio - (best_ratio or 0.0)) <= _EPSILON
                    and basis[row] < basis[pivot_row]
                ):
                    best_ratio = ratio
                    pivot_row = row
        if pivot_row < 0:
            return "unbounded"
        _pivot(rows, rhs, basis, col_rows, pivot_row, pivot_col)
        # Eliminate the pivot column from the objective row as well.
        factor = objective.get(pivot_col, 0.0)
        if abs(factor) > _EPSILON:
            for column, value in rows[pivot_row].items():
                objective[column] = objective.get(column, 0.0) - factor * value
            objective_rhs[0] -= factor * rhs[pivot_row]
        # else: like the dense implementation, a sub-epsilon residue in the
        # objective row is left untouched (it can never be chosen by Bland's
        # rule, which requires < -epsilon).
    raise PathAnalysisError("simplex did not terminate (pivot limit reached)")


def solve_lp(
    objective: Sequence[float],
    a_ub: Sequence[Sequence[float]],
    b_ub: Sequence[float],
    a_eq: Sequence[Sequence[float]],
    b_eq: Sequence[float],
    maximise: bool = True,
) -> SimplexResult:
    """Solve the LP with dense constraint rows (convenience wrapper)."""
    return solve_sparse_lp(
        objective,
        [_sparse(row) for row in a_ub],
        b_ub,
        [_sparse(row) for row in a_eq],
        b_eq,
        maximise=maximise,
    )


@dataclass
class PreparedTableau:
    """A tableau after phase 1: a feasible basis, independent of objective.

    Phase 1 (artificial-variable elimination) never looks at the real
    objective, so one prepared tableau can serve several phase-2 runs — the
    IPET path analysis exploits this to solve the WCET (maximise) and BCET
    (minimise) objectives of one function against a single feasibility basis.
    """

    num_vars: int
    num_slack: int
    rows: List[SparseRow]
    rhs: List[float]
    basis: List[int]
    col_rows: Dict[int, set]
    artificial_columns: List[int]
    feasible: bool


def solve_sparse_lp(
    objective: Sequence[float],
    a_ub: Sequence[SparseRow],
    b_ub: Sequence[float],
    a_eq: Sequence[SparseRow],
    b_eq: Sequence[float],
    maximise: bool = True,
) -> SimplexResult:
    """Solve the LP; see module docstring for the problem form.

    Constraint rows are ``{variable index: coefficient}`` dicts (explicit
    zeros are ignored); the objective remains a dense sequence.
    """
    prepared = prepare_sparse_tableau(len(objective), a_ub, b_ub, a_eq, b_eq)
    return optimise_prepared(prepared, objective, maximise, clone=False)


def prepare_sparse_tableau(
    num_vars: int,
    a_ub: Sequence[SparseRow],
    b_ub: Sequence[float],
    a_eq: Sequence[SparseRow],
    b_eq: Sequence[float],
) -> PreparedTableau:
    """Build the tableau and run phase 1 (minimise artificial variables)."""
    rows_in: List[Tuple[SparseRow, float, str]] = []
    for coefficients, bound in zip(a_ub, b_ub):
        rows_in.append((_nonzero(coefficients), float(bound), "<="))
    for coefficients, bound in zip(a_eq, b_eq):
        rows_in.append((_nonzero(coefficients), float(bound), "=="))

    # Normalise to non-negative right-hand sides.
    normalised: List[Tuple[SparseRow, float, str]] = []
    for coefficients, bound, kind in rows_in:
        if bound < 0:
            coefficients = {col: -value for col, value in coefficients.items()}
            bound = -bound
            kind = {"<=": ">=", ">=": "<=", "==": "=="}[kind]
        normalised.append((coefficients, bound, kind))

    num_slack = sum(1 for _, _, kind in normalised if kind in ("<=", ">="))
    num_artificial = sum(1 for _, _, kind in normalised if kind in (">=", "=="))
    total_columns = num_vars + num_slack + num_artificial

    rows: List[SparseRow] = []
    rhs: List[float] = []
    basis: List[int] = []
    slack_index = num_vars
    artificial_index = num_vars + num_slack
    artificial_columns: List[int] = []

    for coefficients, bound, kind in normalised:
        row = dict(coefficients)
        if kind == "<=":
            row[slack_index] = 1.0
            basis.append(slack_index)
            slack_index += 1
        elif kind == ">=":
            row[slack_index] = -1.0
            slack_index += 1
            row[artificial_index] = 1.0
            basis.append(artificial_index)
            artificial_columns.append(artificial_index)
            artificial_index += 1
        else:  # ==
            row[artificial_index] = 1.0
            basis.append(artificial_index)
            artificial_columns.append(artificial_index)
            artificial_index += 1
        rows.append(row)
        rhs.append(bound)

    col_rows = _build_column_index(rows)

    # ------------------------------------------------------------------ #
    # Phase 1: minimise the sum of artificial variables.
    # ------------------------------------------------------------------ #
    if artificial_columns:
        artificial_set = set(artificial_columns)
        phase1: SparseRow = {column: 1.0 for column in artificial_columns}
        phase1_rhs = [0.0]
        # Express the phase-1 objective in terms of non-basic variables.
        for row, bound, basic_column in zip(rows, rhs, basis):
            if basic_column in artificial_set:
                for column, value in row.items():
                    phase1[column] = phase1.get(column, 0.0) - value
                phase1_rhs[0] -= bound
        status = _run_simplex(
            rows, rhs, phase1, phase1_rhs, basis, col_rows, total_columns
        )
        if status == "unbounded":
            raise PathAnalysisError("phase-1 simplex reported an unbounded problem")
        phase1_value = -phase1_rhs[0]
        if phase1_value > 1e-6:
            return PreparedTableau(
                num_vars, num_slack, rows, rhs, basis, col_rows,
                artificial_columns, feasible=False,
            )
        # Drive any artificial variable still in the basis out of it.
        for row_index, basic_column in enumerate(list(basis)):
            if basic_column in artificial_set:
                for column in range(num_vars + num_slack):
                    if abs(rows[row_index].get(column, 0.0)) > _EPSILON:
                        _pivot(rows, rhs, basis, col_rows, row_index, column)
                        break

    return PreparedTableau(
        num_vars, num_slack, rows, rhs, basis, col_rows,
        artificial_columns, feasible=True,
    )


def optimise_prepared(
    prepared: PreparedTableau,
    objective: Sequence[float],
    maximise: bool,
    clone: bool = True,
) -> SimplexResult:
    """Phase 2: optimise ``objective`` over a prepared (phase-1) tableau.

    With ``clone=True`` the prepared tableau is left untouched so further
    objectives can be optimised against the same feasibility basis.
    """
    if not prepared.feasible:
        return SimplexResult(status="infeasible")
    num_vars = prepared.num_vars
    num_slack = prepared.num_slack
    if clone:
        rows = [dict(row) for row in prepared.rows]
        rhs = list(prepared.rhs)
        basis = list(prepared.basis)
        col_rows = {column: set(members) for column, members in prepared.col_rows.items()}
    else:
        rows = prepared.rows
        rhs = prepared.rhs
        basis = prepared.basis
        col_rows = prepared.col_rows
    sign = 1.0 if maximise else -1.0

    # Optimise the real objective (artificials pinned to zero).
    objective_row: SparseRow = {}
    for index in range(num_vars):
        value = -sign * float(objective[index])
        if value:
            objective_row[index] = value
    for column in prepared.artificial_columns:
        objective_row[column] = 1e9  # forbid re-entering the basis
    objective_rhs = [0.0]
    # Express in terms of the current basis.
    for row, bound, basic_column in zip(rows, rhs, basis):
        coefficient = objective_row.get(basic_column, 0.0)
        if abs(coefficient) > _EPSILON:
            for column, value in row.items():
                objective_row[column] = objective_row.get(column, 0.0) - coefficient * value
            objective_rhs[0] -= coefficient * bound

    status = _run_simplex(
        rows, rhs, objective_row, objective_rhs, basis, col_rows, num_vars + num_slack
    )
    if status == "unbounded":
        return SimplexResult(status="unbounded")

    values = [0.0] * num_vars
    for row_index, basic_column in enumerate(basis):
        if basic_column < num_vars:
            values[basic_column] = rhs[row_index]
    objective_value = sum(c * v for c, v in zip(objective, values))
    return SimplexResult(status="optimal", objective=objective_value, values=values)


def _sparse(coefficients: Sequence[float]) -> SparseRow:
    return {
        index: float(value)
        for index, value in enumerate(coefficients)
        if float(value) != 0.0
    }


def _nonzero(row: SparseRow) -> SparseRow:
    """Drop explicit zeros and coerce coefficients to float."""
    return {index: float(value) for index, value in row.items() if float(value) != 0.0}
