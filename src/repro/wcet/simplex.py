"""A small, dependency-free two-phase simplex solver over sparse rows.

The IPET path analysis produces linear programs with a few dozen variables; we
solve them either with this solver or with scipy's ``linprog`` (HiGHS) backend
(:mod:`repro.wcet.ilp` chooses).  Having our own implementation keeps the
library usable without scipy and gives the test-suite a second, independent
solver to cross-check against.

The solver handles problems of the form::

    maximise    c·x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                x >= 0

using the standard two-phase primal simplex method with Bland's pivoting rule
(which guarantees termination).

Representation
--------------

IPET tableaus are network-flow-like: each structural constraint mentions only
the handful of edges around one basic block, so the dense tableau is almost
entirely zeros (and the slack/artificial columns make it wider still).  Rows
are therefore stored as ``{column: coefficient}`` dicts with the right-hand
side kept separately: a pivot touches only the nonzero entries of the pivot
row and the rows that actually contain the pivot column.  The arithmetic per
touched entry is exactly the dense update ``row[c] -= factor * pivot[c]``, so
results are bit-identical to the dense implementation — including fill-in and
the tiny cancellation residues the epsilon comparisons were tuned for.

Under the fused engine a row whose fill-in crosses a quarter of the tableau
width is promoted to a flat float list ("dense row"): pivot updates then index
straight into the list with no hashing or fill-in bookkeeping.  The arithmetic
sequence is unchanged — a dict's absent entry and a list's stored ``0.0``
produce the same update (at most the sign of a zero differs, which no epsilon
comparison, Bland scan or ratio test can observe) — so pivot sequences and
results remain bit-identical to the all-sparse reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InfeasibleILPError, PathAnalysisError, UnboundedILPError

_EPSILON = 1e-9

#: A sparse tableau row: column index -> nonzero coefficient.
SparseRow = Dict[int, float]

#: Promote a sparse row to dense list storage when it carries entries in more
#: than 1/_DENSE_FILL_RATIO of the tableau's columns (fused engine only).
_DENSE_FILL_RATIO = 4
#: Never densify tiny tableaus; the dict overhead is irrelevant there.
_DENSE_MIN_COLUMNS = 64


@dataclass
class SimplexResult:
    """Solution of a linear program."""

    status: str               # "optimal", "infeasible", "unbounded"
    objective: float = 0.0
    values: Optional[List[float]] = None
    #: Simplex pivots performed to produce this result (all phases run by
    #: the producing call; see ``optimise_prepared`` for the split).
    pivots: int = 0


def _build_column_index(rows: List[SparseRow]) -> Dict[int, set]:
    """``column -> {row indices with a stored entry}`` for the whole tableau.

    Kept additively up to date across pivots (entries that cancel to ~0 stay
    registered, exactly as the dense tableau kept explicit zeros): a lookup
    may yield a structurally-zero row, but never misses a nonzero one.
    """
    index: Dict[int, set] = {}
    get = index.get
    for r, row in enumerate(rows):
        for column in row:
            members = get(column)
            if members is None:
                index[column] = {r}
            else:
                members.add(r)
    return index


def _densify(
    rows: List,
    col_rows: Dict[int, set],
    dense_rows: set,
    r: int,
    total_columns: int,
) -> None:
    """Promote sparse row ``r`` to a flat float list and drop its column index."""
    row = rows[r]
    dense = [0.0] * total_columns
    for column, value in row.items():
        dense[column] = value
    rows[r] = dense
    dense_rows.add(r)
    for members in col_rows.values():
        members.discard(r)


def _pivot(
    rows: List,
    rhs: List[float],
    basis: List[int],
    col_rows: Dict[int, set],
    row: int,
    col: int,
    dense_rows: Optional[set] = None,
    total_columns: int = 0,
) -> None:
    """Pivot on ``(row, col)``: normalise the pivot row, eliminate elsewhere.

    ``dense_rows`` is the set of list-backed row indices (None disables dense
    storage entirely — the reference path).  Rows it names are not tracked in
    ``col_rows``; elimination visits them unconditionally.
    """
    pivot_row = rows[row]
    dense_pivot = type(pivot_row) is list
    pivot_value = pivot_row[col]
    if pivot_value != 1.0:
        if dense_pivot:
            for column, value in enumerate(pivot_row):
                if value != 0.0:
                    pivot_row[column] = value / pivot_value
        else:
            for column in pivot_row:
                pivot_row[column] /= pivot_value
        rhs[row] /= pivot_value
    if dense_pivot:
        pivot_items = [
            (column, value) for column, value in enumerate(pivot_row) if value != 0.0
        ]
    else:
        pivot_items = list(pivot_row.items())
    pivot_rhs = rhs[row]
    targets = list(col_rows.get(col, ()))
    if dense_rows:
        targets.extend(dense_rows)
    densify_floor = 0
    if dense_rows is not None and total_columns >= _DENSE_MIN_COLUMNS:
        densify_floor = total_columns // _DENSE_FILL_RATIO
    for r in targets:
        if r == row:
            continue
        current = rows[r]
        if type(current) is list:
            factor = current[col]
            if factor > _EPSILON or factor < -_EPSILON:
                for column, value in pivot_items:
                    current[column] -= factor * value
                rhs[r] -= factor * pivot_rhs
            continue
        factor = current.get(col)
        if factor is not None and (factor > _EPSILON or factor < -_EPSILON):
            get = current.get
            for column, value in pivot_items:
                existing = get(column)
                if existing is None:
                    current[column] = 0.0 - factor * value
                    col_rows.setdefault(column, set()).add(r)
                else:
                    current[column] = existing - factor * value
            rhs[r] -= factor * pivot_rhs
            if densify_floor and len(current) > densify_floor:
                _densify(rows, col_rows, dense_rows, r, total_columns)
    basis[row] = col


def _run_simplex(
    rows: List,
    rhs: List[float],
    objective: SparseRow,
    objective_rhs: List[float],
    basis: List[int],
    col_rows: Dict[int, set],
    num_columns: int,
    dense_rows: Optional[set] = None,
    total_columns: int = 0,
) -> Tuple[str, int]:
    """Run primal simplex; ``objective``/``objective_rhs[0]`` is the cost row.

    Returns ``(status, pivots)`` where status is "optimal" or "unbounded".
    Uses Bland's rule to avoid cycling.
    """
    max_pivots = 20_000
    neg_epsilon = -_EPSILON
    for pivots in range(max_pivots):
        # Bland's rule: choose the lowest-index column with a negative reduced cost.
        pivot_col = min(
            (
                col
                for col, value in objective.items()
                if value < neg_epsilon and col < num_columns
            ),
            default=-1,
        )
        if pivot_col < 0:
            return "optimal", pivots
        # Ratio test over the rows that actually carry the pivot column
        # (ascending row index, so Bland tie-breaking matches a full scan;
        # dense rows carry every column and always participate — and are
        # never in col_rows, so plain concatenation has no duplicates).
        candidates = col_rows.get(pivot_col, ())
        if dense_rows:
            candidates = [*candidates, *dense_rows]
        pivot_row = -1
        best_ratio = None
        for row in sorted(candidates):
            current = rows[row]
            if type(current) is list:
                coefficient = current[pivot_col]
            else:
                coefficient = current.get(pivot_col, 0.0)
            if coefficient > _EPSILON:
                ratio = rhs[row] / coefficient
                if best_ratio is None or ratio < best_ratio - _EPSILON or (
                    abs(ratio - (best_ratio or 0.0)) <= _EPSILON
                    and basis[row] < basis[pivot_row]
                ):
                    best_ratio = ratio
                    pivot_row = row
        if pivot_row < 0:
            return "unbounded", pivots
        _pivot(
            rows, rhs, basis, col_rows, pivot_row, pivot_col,
            dense_rows, total_columns,
        )
        # Eliminate the pivot column from the objective row as well.
        factor = objective.get(pivot_col, 0.0)
        if abs(factor) > _EPSILON:
            chosen = rows[pivot_row]
            if type(chosen) is list:
                for column, value in enumerate(chosen):
                    if value != 0.0:
                        objective[column] = objective.get(column, 0.0) - factor * value
            else:
                for column, value in chosen.items():
                    objective[column] = objective.get(column, 0.0) - factor * value
            objective_rhs[0] -= factor * rhs[pivot_row]
        # else: like the dense implementation, a sub-epsilon residue in the
        # objective row is left untouched (it can never be chosen by Bland's
        # rule, which requires < -epsilon).
    raise PathAnalysisError("simplex did not terminate (pivot limit reached)")


def solve_lp(
    objective: Sequence[float],
    a_ub: Sequence[Sequence[float]],
    b_ub: Sequence[float],
    a_eq: Sequence[Sequence[float]],
    b_eq: Sequence[float],
    maximise: bool = True,
    engine: str = "fused",
) -> SimplexResult:
    """Solve the LP with dense constraint rows (convenience wrapper)."""
    return solve_sparse_lp(
        objective,
        [_sparse(row) for row in a_ub],
        b_ub,
        [_sparse(row) for row in a_eq],
        b_eq,
        maximise=maximise,
        engine=engine,
    )


@dataclass
class PreparedTableau:
    """A tableau after phase 1: a feasible basis, independent of objective.

    Phase 1 (artificial-variable elimination) never looks at the real
    objective, so one prepared tableau can serve several phase-2 runs — the
    IPET path analysis exploits this to solve the WCET (maximise) and BCET
    (minimise) objectives of one function against a single feasibility basis.
    """

    num_vars: int
    num_slack: int
    rows: List
    rhs: List[float]
    basis: List[int]
    col_rows: Dict[int, set]
    artificial_columns: List[int]
    feasible: bool
    #: Total column count (vars + slack + artificial); dense rows are lists
    #: of this length.
    total_columns: int = 0
    #: Indices of list-backed rows (None = dense storage disabled, the
    #: reference engine).
    dense_rows: Optional[set] = None
    #: Pivots spent by phase 1 (including driving artificials out).
    pivots: int = 0


def solve_sparse_lp(
    objective: Sequence[float],
    a_ub: Sequence[SparseRow],
    b_ub: Sequence[float],
    a_eq: Sequence[SparseRow],
    b_eq: Sequence[float],
    maximise: bool = True,
    engine: str = "fused",
) -> SimplexResult:
    """Solve the LP; see module docstring for the problem form.

    Constraint rows are ``{variable index: coefficient}`` dicts (explicit
    zeros are ignored); the objective remains a dense sequence.
    """
    prepared = prepare_sparse_tableau(
        len(objective), a_ub, b_ub, a_eq, b_eq, engine=engine
    )
    result = optimise_prepared(prepared, objective, maximise, clone=False)
    result.pivots += prepared.pivots
    return result


def prepare_sparse_tableau(
    num_vars: int,
    a_ub: Sequence[SparseRow],
    b_ub: Sequence[float],
    a_eq: Sequence[SparseRow],
    b_eq: Sequence[float],
    engine: str = "fused",
) -> PreparedTableau:
    """Build the tableau and run phase 1 (minimise artificial variables).

    ``engine="fused"`` enables dense list storage for rows whose fill-in
    grows past the densification threshold; ``"reference"`` keeps every row
    as a sparse dict.  Both produce bit-identical pivot sequences.
    """
    rows_in: List[Tuple[SparseRow, float, str]] = []
    for coefficients, bound in zip(a_ub, b_ub):
        rows_in.append((_nonzero(coefficients), float(bound), "<="))
    for coefficients, bound in zip(a_eq, b_eq):
        rows_in.append((_nonzero(coefficients), float(bound), "=="))

    # Normalise to non-negative right-hand sides.
    normalised: List[Tuple[SparseRow, float, str]] = []
    for coefficients, bound, kind in rows_in:
        if bound < 0:
            coefficients = {col: -value for col, value in coefficients.items()}
            bound = -bound
            kind = {"<=": ">=", ">=": "<=", "==": "=="}[kind]
        normalised.append((coefficients, bound, kind))

    num_slack = sum(1 for _, _, kind in normalised if kind in ("<=", ">="))
    num_artificial = sum(1 for _, _, kind in normalised if kind in (">=", "=="))
    total_columns = num_vars + num_slack + num_artificial

    rows: List[SparseRow] = []
    rhs: List[float] = []
    basis: List[int] = []
    slack_index = num_vars
    artificial_index = num_vars + num_slack
    artificial_columns: List[int] = []

    for coefficients, bound, kind in normalised:
        row = dict(coefficients)
        if kind == "<=":
            row[slack_index] = 1.0
            basis.append(slack_index)
            slack_index += 1
        elif kind == ">=":
            row[slack_index] = -1.0
            slack_index += 1
            row[artificial_index] = 1.0
            basis.append(artificial_index)
            artificial_columns.append(artificial_index)
            artificial_index += 1
        else:  # ==
            row[artificial_index] = 1.0
            basis.append(artificial_index)
            artificial_columns.append(artificial_index)
            artificial_index += 1
        rows.append(row)
        rhs.append(bound)

    col_rows = _build_column_index(rows)
    dense_rows: Optional[set] = set() if engine == "fused" else None
    pivots = 0

    # ------------------------------------------------------------------ #
    # Phase 1: minimise the sum of artificial variables.
    # ------------------------------------------------------------------ #
    if artificial_columns:
        artificial_set = set(artificial_columns)
        phase1: SparseRow = {column: 1.0 for column in artificial_columns}
        phase1_rhs = [0.0]
        # Express the phase-1 objective in terms of non-basic variables.
        for row, bound, basic_column in zip(rows, rhs, basis):
            if basic_column in artificial_set:
                for column, value in row.items():
                    phase1[column] = phase1.get(column, 0.0) - value
                phase1_rhs[0] -= bound
        status, pivots = _run_simplex(
            rows, rhs, phase1, phase1_rhs, basis, col_rows, total_columns,
            dense_rows, total_columns,
        )
        if status == "unbounded":
            raise PathAnalysisError("phase-1 simplex reported an unbounded problem")
        phase1_value = -phase1_rhs[0]
        if phase1_value > 1e-6:
            return PreparedTableau(
                num_vars, num_slack, rows, rhs, basis, col_rows,
                artificial_columns, feasible=False,
                total_columns=total_columns, dense_rows=dense_rows, pivots=pivots,
            )
        # Drive any artificial variable still in the basis out of it.
        for row_index, basic_column in enumerate(list(basis)):
            if basic_column in artificial_set:
                current = rows[row_index]
                for column in range(num_vars + num_slack):
                    if type(current) is list:
                        coefficient = current[column]
                    else:
                        coefficient = current.get(column, 0.0)
                    if abs(coefficient) > _EPSILON:
                        _pivot(
                            rows, rhs, basis, col_rows, row_index, column,
                            dense_rows, total_columns,
                        )
                        pivots += 1
                        break

    return PreparedTableau(
        num_vars, num_slack, rows, rhs, basis, col_rows,
        artificial_columns, feasible=True,
        total_columns=total_columns, dense_rows=dense_rows, pivots=pivots,
    )


def optimise_prepared(
    prepared: PreparedTableau,
    objective: Sequence[float],
    maximise: bool,
    clone: bool = True,
) -> SimplexResult:
    """Phase 2: optimise ``objective`` over a prepared (phase-1) tableau.

    With ``clone=True`` the prepared tableau is left untouched so further
    objectives can be optimised against the same feasibility basis.  The
    returned ``pivots`` counts this phase-2 run only; the caller owns adding
    ``prepared.pivots`` (phase 1) once, however many objectives it optimises.
    """
    if not prepared.feasible:
        return SimplexResult(status="infeasible")
    num_vars = prepared.num_vars
    num_slack = prepared.num_slack
    if clone:
        rows = [
            list(row) if type(row) is list else dict(row) for row in prepared.rows
        ]
        rhs = list(prepared.rhs)
        basis = list(prepared.basis)
        col_rows = {column: set(members) for column, members in prepared.col_rows.items()}
        dense_rows = None if prepared.dense_rows is None else set(prepared.dense_rows)
    else:
        rows = prepared.rows
        rhs = prepared.rhs
        basis = prepared.basis
        col_rows = prepared.col_rows
        dense_rows = prepared.dense_rows
    sign = 1.0 if maximise else -1.0

    # Optimise the real objective (artificials pinned to zero).
    objective_row: SparseRow = {}
    for index in range(num_vars):
        value = -sign * float(objective[index])
        if value:
            objective_row[index] = value
    for column in prepared.artificial_columns:
        objective_row[column] = 1e9  # forbid re-entering the basis
    objective_rhs = [0.0]
    # Express in terms of the current basis.
    for row, bound, basic_column in zip(rows, rhs, basis):
        coefficient = objective_row.get(basic_column, 0.0)
        if abs(coefficient) > _EPSILON:
            if type(row) is list:
                for column, value in enumerate(row):
                    if value != 0.0:
                        objective_row[column] = (
                            objective_row.get(column, 0.0) - coefficient * value
                        )
            else:
                for column, value in row.items():
                    objective_row[column] = (
                        objective_row.get(column, 0.0) - coefficient * value
                    )
            objective_rhs[0] -= coefficient * bound

    status, pivots = _run_simplex(
        rows, rhs, objective_row, objective_rhs, basis, col_rows,
        num_vars + num_slack, dense_rows, prepared.total_columns,
    )
    if status == "unbounded":
        return SimplexResult(status="unbounded", pivots=pivots)

    values = [0.0] * num_vars
    for row_index, basic_column in enumerate(basis):
        if basic_column < num_vars:
            values[basic_column] = rhs[row_index]
    objective_value = sum(c * v for c, v in zip(objective, values))
    return SimplexResult(
        status="optimal", objective=objective_value, values=values, pivots=pivots
    )


def _sparse(coefficients: Sequence[float]) -> SparseRow:
    return {
        index: float(value)
        for index, value in enumerate(coefficients)
        if float(value) != 0.0
    }


def _nonzero(row: SparseRow) -> SparseRow:
    """Drop explicit zeros and coerce coefficients to float."""
    return {index: float(value) for index, value in row.items() if float(value) != 0.0}
