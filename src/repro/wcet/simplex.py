"""A small, dependency-free two-phase simplex solver.

The IPET path analysis produces linear programs with a few dozen variables; we
solve them either with this solver or with scipy's ``linprog`` (HiGHS) backend
(:mod:`repro.wcet.ilp` chooses).  Having our own implementation keeps the
library usable without scipy and gives the test-suite a second, independent
solver to cross-check against.

The solver handles problems of the form::

    maximise    c·x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                x >= 0

using the standard two-phase primal simplex method with Bland's pivoting rule
(which guarantees termination).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import InfeasibleILPError, PathAnalysisError, UnboundedILPError

_EPSILON = 1e-9


@dataclass
class SimplexResult:
    """Solution of a linear program."""

    status: str               # "optimal", "infeasible", "unbounded"
    objective: float = 0.0
    values: Optional[List[float]] = None


def _pivot(tableau: List[List[float]], basis: List[int], row: int, col: int) -> None:
    pivot_value = tableau[row][col]
    tableau[row] = [value / pivot_value for value in tableau[row]]
    for r, current in enumerate(tableau):
        if r != row and abs(current[col]) > _EPSILON:
            factor = current[col]
            tableau[r] = [
                current_value - factor * pivot_value_row
                for current_value, pivot_value_row in zip(current, tableau[row])
            ]
    basis[row] = col


def _run_simplex(
    tableau: List[List[float]], basis: List[int], num_columns: int
) -> str:
    """Run primal simplex on a tableau whose last row is the objective row.

    Returns "optimal" or "unbounded".  Uses Bland's rule to avoid cycling.
    """
    max_pivots = 20_000
    for _ in range(max_pivots):
        objective_row = tableau[-1]
        # Bland's rule: choose the lowest-index column with a negative reduced cost.
        pivot_col = -1
        for col in range(num_columns):
            if objective_row[col] < -_EPSILON:
                pivot_col = col
                break
        if pivot_col < 0:
            return "optimal"
        # Ratio test (again lowest index on ties — Bland).
        pivot_row = -1
        best_ratio = None
        for row in range(len(tableau) - 1):
            coefficient = tableau[row][pivot_col]
            if coefficient > _EPSILON:
                ratio = tableau[row][-1] / coefficient
                if best_ratio is None or ratio < best_ratio - _EPSILON or (
                    abs(ratio - (best_ratio or 0.0)) <= _EPSILON
                    and basis[row] < basis[pivot_row]
                ):
                    best_ratio = ratio
                    pivot_row = row
        if pivot_row < 0:
            return "unbounded"
        _pivot(tableau, basis, pivot_row, pivot_col)
    raise PathAnalysisError("simplex did not terminate (pivot limit reached)")


def solve_lp(
    objective: Sequence[float],
    a_ub: Sequence[Sequence[float]],
    b_ub: Sequence[float],
    a_eq: Sequence[Sequence[float]],
    b_eq: Sequence[float],
    maximise: bool = True,
) -> SimplexResult:
    """Solve the LP; see module docstring for the problem form."""
    num_vars = len(objective)
    sign = 1.0 if maximise else -1.0

    rows: List[Tuple[List[float], float, str]] = []
    for coefficients, bound in zip(a_ub, b_ub):
        rows.append((list(coefficients), float(bound), "<="))
    for coefficients, bound in zip(a_eq, b_eq):
        rows.append((list(coefficients), float(bound), "=="))

    # Normalise to non-negative right-hand sides.
    normalised: List[Tuple[List[float], float, str]] = []
    for coefficients, bound, kind in rows:
        if bound < 0:
            coefficients = [-c for c in coefficients]
            bound = -bound
            kind = {"<=": ">=", ">=": "<=", "==": "=="}[kind]
        normalised.append((coefficients, bound, kind))

    num_slack = sum(1 for _, _, kind in normalised if kind in ("<=", ">="))
    num_artificial = sum(1 for _, _, kind in normalised if kind in (">=", "=="))
    total_columns = num_vars + num_slack + num_artificial

    tableau: List[List[float]] = []
    basis: List[int] = []
    slack_index = num_vars
    artificial_index = num_vars + num_slack
    artificial_columns: List[int] = []

    for coefficients, bound, kind in normalised:
        row = [0.0] * (total_columns + 1)
        for index, coefficient in enumerate(coefficients):
            row[index] = float(coefficient)
        row[-1] = bound
        if kind == "<=":
            row[slack_index] = 1.0
            basis.append(slack_index)
            slack_index += 1
        elif kind == ">=":
            row[slack_index] = -1.0
            slack_index += 1
            row[artificial_index] = 1.0
            basis.append(artificial_index)
            artificial_columns.append(artificial_index)
            artificial_index += 1
        else:  # ==
            row[artificial_index] = 1.0
            basis.append(artificial_index)
            artificial_columns.append(artificial_index)
            artificial_index += 1
        tableau.append(row)

    # ------------------------------------------------------------------ #
    # Phase 1: minimise the sum of artificial variables.
    # ------------------------------------------------------------------ #
    if artificial_columns:
        phase1 = [0.0] * (total_columns + 1)
        for column in artificial_columns:
            phase1[column] = 1.0
        # Express the phase-1 objective in terms of non-basic variables.
        for row, basic_column in zip(tableau, basis):
            if basic_column in artificial_columns:
                phase1 = [p - r for p, r in zip(phase1, row)]
        tableau.append(phase1)
        status = _run_simplex(tableau, basis, total_columns)
        if status == "unbounded":
            raise PathAnalysisError("phase-1 simplex reported an unbounded problem")
        phase1_value = -tableau[-1][-1]
        tableau.pop()
        if phase1_value > 1e-6:
            return SimplexResult(status="infeasible")
        # Drive any artificial variable still in the basis out of it.
        for row_index, basic_column in enumerate(list(basis)):
            if basic_column in artificial_columns:
                for column in range(num_vars + num_slack):
                    if abs(tableau[row_index][column]) > _EPSILON:
                        _pivot(tableau, basis, row_index, column)
                        break

    # ------------------------------------------------------------------ #
    # Phase 2: optimise the real objective (artificials pinned to zero).
    # ------------------------------------------------------------------ #
    objective_row = [0.0] * (total_columns + 1)
    for index in range(num_vars):
        objective_row[index] = -sign * float(objective[index])
    for column in artificial_columns:
        objective_row[column] = 1e9  # forbid re-entering the basis
    # Express in terms of the current basis.
    for row, basic_column in zip(tableau, basis):
        coefficient = objective_row[basic_column]
        if abs(coefficient) > _EPSILON:
            objective_row = [o - coefficient * r for o, r in zip(objective_row, row)]
    tableau.append(objective_row)

    status = _run_simplex(tableau, basis, num_vars + num_slack)
    if status == "unbounded":
        return SimplexResult(status="unbounded")

    values = [0.0] * num_vars
    for row_index, basic_column in enumerate(basis):
        if basic_column < num_vars:
            values[basic_column] = tableau[row_index][-1]
    objective_value = sum(c * v for c, v in zip(objective, values))
    return SimplexResult(status="optimal", objective=objective_value, values=values)
