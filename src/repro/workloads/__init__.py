"""Workload programs for the examples and benchmarks.

Every experiment in DESIGN.md analyses one or more of these mini-C programs
(or, for the single-path study, directly-built IR programs).  Each module
exposes the source text, the design-level annotations the paper's Section 4.3
would attach to it, and helpers that compile it to an IR program.

Modules
-------

* :mod:`repro.workloads.flight_control` — dual-mode flight-control task
  (operating modes experiment).
* :mod:`repro.workloads.message_handler` — CAN-style message handler with
  per-cycle read/write buffers (data-dependent algorithms experiment).
* :mod:`repro.workloads.error_handling` — monitor task with error handlers
  (error-handling experiment).
* :mod:`repro.workloads.loops_suite` — loop-structure variants for MISRA rules
  13.4, 13.6, 14.1, 14.4 and 14.5.
* :mod:`repro.workloads.functions_suite` — recursion and variadic-function
  variants for rules 16.1 and 16.2.
* :mod:`repro.workloads.pointer_suite` — dynamic memory, device drivers and
  function-pointer dispatch (rule 20.4, imprecise-memory and
  function-pointer experiments).
* :mod:`repro.workloads.arithmetic_suite` — software arithmetic kernels
  (lDivMod vs. restoring division vs. fixed point) and the single-path
  transformation pair.
* :mod:`repro.workloads.catalog` — a name-indexed registry of everything above.
"""

from repro.workloads.catalog import Workload, catalog, workload_names, get_workload

__all__ = ["Workload", "catalog", "workload_names", "get_workload"]
