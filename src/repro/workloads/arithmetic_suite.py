"""Software-arithmetic workloads (Section 4.3 "Software Arithmetic") and the
single-path transformation pair (Section 2, Puschner/Kirner critique).

* ``ldivmod`` — the estimate-and-correct 32-bit division compiled to the IR
  (the same algorithm as :mod:`repro.arith.ldivmod`); its loop is input-data
  dependent, so WCET analysis must either be told the worst-case iteration
  count or assume a huge bound.
* ``restoring division`` — the fixed-iteration alternative; its loop bound is
  found automatically and its WCET equals its typical time.
* ``fixed-point filter`` vs. ``soft-float style filter`` — a small control-law
  kernel in constant-time fixed-point arithmetic vs. one calling the division
  routine per sample.
* ``single-path pair`` — an IR-level kernel once with data-dependent branches
  and once transformed into a single path using predicated instructions: the
  predicated version always fetches (and pays for) both alternatives, which is
  exactly why the paper argues the transformation impairs the worst case.
"""

from __future__ import annotations

from typing import Tuple

from repro.annotations import AnnotationSet
from repro.arith.ldivmod import LDIVMOD_WORST_CASE_BOUND
from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program
from repro.minic.codegen import compile_source

#: Number of samples processed by the filter kernels.
FILTER_SAMPLES = 8

# --------------------------------------------------------------------------- #
# lDivMod in mini-C (same algorithm as repro.arith.ldivmod, unsigned 32 bit)
# --------------------------------------------------------------------------- #
LDIVMOD_SOURCE = """
unsigned int last_remainder;

/* Estimate-and-correct division built on a 16-bit hardware divider
   (reimplementation of the CodeWarrior lDivMod skeleton). */
unsigned int ldivmod(unsigned int dividend, unsigned int divisor) {
    unsigned int quotient = 0;
    unsigned int remainder = dividend;
    unsigned int shift = 0;
    unsigned int divisor_high;
    unsigned int chunk;
    unsigned int scaled;

    if (dividend < 65536) {
        last_remainder = dividend % divisor;
        return dividend / divisor;
    }
    scaled = divisor;
    while (scaled >= 65536) {
        scaled = scaled >> 1;
        shift = shift + 1;
    }
    divisor_high = scaled;
approximate:
    if (remainder >= divisor) {
        chunk = (remainder >> shift) / (divisor_high + 1);
        if (chunk > 65535) {
            chunk = 65535;
        }
        if (chunk == 0) {
            chunk = 1;
        }
        quotient = quotient + chunk;
        remainder = remainder - chunk * divisor;
    }
    if (remainder >= divisor) {
        goto approximate;
    }
    last_remainder = remainder;
    return quotient;
}

unsigned int dividend_input;
unsigned int divisor_input;

int main(void) {
    return ldivmod(dividend_input, divisor_input);
}
"""

RESTORING_SOURCE = """
unsigned int last_remainder;

/* Restoring shift-subtract division: exactly 32 iterations, data independent. */
unsigned int restoring_div(unsigned int dividend, unsigned int divisor) {
    unsigned int remainder = 0;
    unsigned int quotient = 0;
    int bit;
    for (bit = 31; bit >= 0; bit--) {
        remainder = (remainder << 1) | ((dividend >> bit) & 1);
        if (remainder >= divisor) {
            remainder = remainder - divisor;
            quotient = quotient | (1 << bit);
        }
    }
    last_remainder = remainder;
    return quotient;
}

unsigned int dividend_input;
unsigned int divisor_input;

int main(void) {
    return restoring_div(dividend_input, divisor_input);
}
"""

# --------------------------------------------------------------------------- #
# Control-law kernels: division-based scaling vs. fixed-point scaling
# --------------------------------------------------------------------------- #
DIVISION_FILTER_SOURCE = f"""
unsigned int samples[{FILTER_SAMPLES}];
unsigned int gains[{FILTER_SAMPLES}];
unsigned int last_remainder;

unsigned int ldivmod(unsigned int dividend, unsigned int divisor) {{
    unsigned int quotient = 0;
    unsigned int remainder = dividend;
    unsigned int shift = 0;
    unsigned int divisor_high;
    unsigned int chunk;
    unsigned int scaled;
    if (dividend < 65536) {{
        last_remainder = dividend % divisor;
        return dividend / divisor;
    }}
    scaled = divisor;
    while (scaled >= 65536) {{
        scaled = scaled >> 1;
        shift = shift + 1;
    }}
    divisor_high = scaled;
approximate:
    if (remainder >= divisor) {{
        chunk = (remainder >> shift) / (divisor_high + 1);
        if (chunk > 65535) {{
            chunk = 65535;
        }}
        if (chunk == 0) {{
            chunk = 1;
        }}
        quotient = quotient + chunk;
        remainder = remainder - chunk * divisor;
    }}
    if (remainder >= divisor) {{
        goto approximate;
    }}
    last_remainder = remainder;
    return quotient;
}}

int main(void) {{
    int i;
    unsigned int acc = 0;
    for (i = 0; i < {FILTER_SAMPLES}; i++) {{
        acc = acc + ldivmod(samples[i], gains[i] + 1);
    }}
    return acc;
}}
"""

FIXEDPOINT_FILTER_SOURCE = f"""
int samples[{FILTER_SAMPLES}];
int gains[{FILTER_SAMPLES}];

/* Q16.16 multiply by a pre-computed reciprocal: constant-time scaling. */
int main(void) {{
    int i;
    int acc = 0;
    for (i = 0; i < {FILTER_SAMPLES}; i++) {{
        int scaled = (samples[i] * gains[i]) >> 16;
        acc = acc + scaled;
    }}
    return acc;
}}
"""


def ldivmod_program(entry: str = "ldivmod") -> Program:
    return compile_source(LDIVMOD_SOURCE, entry=entry)


def restoring_program(entry: str = "restoring_div") -> Program:
    return compile_source(RESTORING_SOURCE, entry=entry)


def division_filter_program() -> Program:
    return compile_source(DIVISION_FILTER_SOURCE)


def fixedpoint_filter_program() -> Program:
    return compile_source(FIXEDPOINT_FILTER_SOURCE)


def ldivmod_annotations(
    max_iterations: int = LDIVMOD_WORST_CASE_BOUND,
    scaling_bound: int = 16,
) -> AnnotationSet:
    """Manual bounds for the ldivmod loops (nothing is derivable automatically).

    ``max_iterations`` bounds the ``approximate`` correction loop (the safe
    bound for unknown operands is :data:`LDIVMOD_WORST_CASE_BOUND`; a designer
    who can restrict the operand ranges may use a smaller number).
    ``scaling_bound`` bounds the divisor-scaling ``while`` loop (at most 16
    shifts are ever needed to bring a 32-bit divisor below 2^16).
    """
    annotation_set = AnnotationSet()
    annotation_set.add_loop_bound(
        "ldivmod", "approximate", max_iterations,
        comment="correction loop: worst case over all 32-bit operand pairs",
    )
    # The scaling loop is a counter-like loop on a data value; annotate it for
    # robustness (the automatic analysis cannot bound `scaled >>= 1` loops).
    for label in _loop_labels("ldivmod"):
        annotation_set.add_loop_bound(
            "ldivmod", label, scaling_bound, comment="a 32-bit divisor needs at most 16 shifts"
        )
    return annotation_set


def _loop_labels(function_name: str) -> Tuple[str, ...]:
    program = compile_source(LDIVMOD_SOURCE, entry=function_name)
    return tuple(
        label
        for label in program.function(function_name).labels()
        if label.startswith("loop_")
    )


def division_filter_annotations(max_iterations: int = LDIVMOD_WORST_CASE_BOUND) -> AnnotationSet:
    """Same bounds as :func:`ldivmod_annotations` but for the filter workload."""
    annotation_set = AnnotationSet()
    annotation_set.add_loop_bound(
        "ldivmod", "approximate", max_iterations,
        comment="correction loop: worst case over all 32-bit operand pairs",
    )
    compiled = division_filter_program()
    for label in compiled.function("ldivmod").labels():
        if label.startswith("loop_"):
            annotation_set.add_loop_bound(
                "ldivmod", label, 16, comment="a 32-bit divisor needs at most 16 shifts"
            )
    return annotation_set


# --------------------------------------------------------------------------- #
# Single-path transformation pair (IR level, uses predicated instructions)
# --------------------------------------------------------------------------- #
def branchy_kernel() -> Program:
    """Data-dependent kernel: per element either a cheap or an expensive path."""
    builder = ProgramBuilder(entry="main")
    builder.data("values", FILTER_SAMPLES * 4)
    fb = builder.function("main")
    fb.mov("r14", 0)            # index
    fb.mov("r15", 0)            # accumulator
    fb.la("r16", "values")
    fb.label("loop")
    fb.load("r17", "r16", 0)
    fb.slt("r18", "r17", 0)
    fb.bt("r18", "negative")
    # positive path: saturating gain
    fb.mul("r19", "r17", 5)
    fb.sra("r19", "r19", 2)
    fb.add("r15", "r15", "r19")
    fb.br("join")
    fb.label("negative")
    # negative path: expensive compensation
    fb.mul("r19", "r17", -3)
    fb.add("r19", "r19", 7)
    fb.mul("r19", "r19", "r17")
    fb.sub("r15", "r15", "r19")
    fb.label("join")
    fb.add("r16", "r16", 4)
    fb.add("r14", "r14", 1)
    fb.slt("r18", "r14", FILTER_SAMPLES)
    fb.bt("r18", "loop")
    fb.mov("r3", "r15")
    fb.halt()
    return builder.build()


def single_path_kernel() -> Program:
    """The same kernel after the single-path transformation.

    Both alternatives are turned into predicated instructions guarded by the
    comparison result and its negation: every iteration fetches and times both
    paths, which removes the data dependence of the execution time but makes
    every iteration as expensive as the sum of both alternatives — the paper's
    argument against the transformation on conventional hardware.
    """
    builder = ProgramBuilder(entry="main")
    builder.data("values", FILTER_SAMPLES * 4)
    fb = builder.function("main")
    fb.mov("r14", 0)
    fb.mov("r15", 0)
    fb.la("r16", "values")
    fb.label("loop")
    fb.load("r17", "r16", 0)
    fb.slt("r18", "r17", 0)      # predicate: value is negative
    fb.seq("r20", "r18", 0)      # complementary predicate
    # positive path, predicated on r20
    fb.mul("r19", "r17", 5, pred="r20")
    fb.sra("r19", "r19", 2, pred="r20")
    fb.add("r15", "r15", "r19", pred="r20")
    # negative path, predicated on r18
    fb.mul("r19", "r17", -3, pred="r18")
    fb.add("r19", "r19", 7, pred="r18")
    fb.mul("r19", "r19", "r17", pred="r18")
    fb.sub("r15", "r15", "r19", pred="r18")
    fb.add("r16", "r16", 4)
    fb.add("r14", "r14", 1)
    fb.slt("r18", "r14", FILTER_SAMPLES)
    fb.bt("r18", "loop")
    fb.mov("r3", "r15")
    fb.halt()
    return builder.build()
