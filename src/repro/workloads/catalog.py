"""Name-indexed registry of all workloads (used by examples and benchmarks)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.annotations import AnnotationSet
from repro.ir.program import Program
from repro.workloads import (
    arithmetic_suite,
    error_handling,
    flight_control,
    functions_suite,
    loops_suite,
    message_handler,
    pointer_suite,
)


@dataclass
class Workload:
    """A named, self-describing workload."""

    name: str
    description: str
    paper_section: str
    build: Callable[[], Program]
    annotations: Optional[Callable[[], AnnotationSet]] = None
    entry: str = "main"

    def program(self) -> Program:
        return self.build()

    def annotation_set(self) -> AnnotationSet:
        if self.annotations is None:
            return AnnotationSet()
        return self.annotations()


def catalog() -> Dict[str, Workload]:
    """All workloads, keyed by name."""
    entries: List[Workload] = [
        Workload(
            name="flight-control",
            description="dual-mode flight control task (ground / air operating modes)",
            paper_section="4.3 Operating Modes",
            build=flight_control.program,
            annotations=flight_control.annotations,
        ),
        Workload(
            name="message-handler",
            description="CAN-style message handler with per-cycle read/write buffers",
            paper_section="4.3 Data-Dependent Algorithms",
            build=message_handler.program,
            annotations=message_handler.annotations,
            entry="handle_message",
        ),
        Workload(
            name="error-monitor",
            description="periodic monitor with four error handlers and documented scenarios",
            paper_section="4.3 Error Handling",
            build=error_handling.program,
            annotations=error_handling.annotations,
            entry="monitor",
        ),
        Workload(
            name="device-driver",
            description="CAN driver reading a mailbox through an unresolved pointer",
            paper_section="4.3 Imprecise Memory Accesses",
            build=pointer_suite.device_driver_program,
            annotations=pointer_suite.device_driver_annotations,
            entry="can_driver",
        ),
        Workload(
            name="heap-buffer",
            description="buffer processing on a malloc'd buffer (MISRA rule 20.4 violation)",
            paper_section="4.2 Rule 20.4",
            build=pointer_suite.heap_program,
        ),
        Workload(
            name="static-buffer",
            description="the same buffer processing on a statically allocated buffer",
            paper_section="4.2 Rule 20.4",
            build=pointer_suite.static_program,
        ),
        Workload(
            name="ldivmod",
            description="estimate-and-correct 32-bit software division (Table 1 subject)",
            paper_section="4.3 Software Arithmetic / Table 1",
            build=arithmetic_suite.ldivmod_program,
            annotations=arithmetic_suite.ldivmod_annotations,
            entry="ldivmod",
        ),
        Workload(
            name="restoring-division",
            description="restoring shift-subtract division with a fixed iteration count",
            paper_section="4.3 Software Arithmetic",
            build=arithmetic_suite.restoring_program,
            entry="restoring_div",
        ),
        Workload(
            name="single-path",
            description="predicated single-path transformation of a branchy kernel",
            paper_section="2 Related Work (Puschner/Kirner)",
            build=arithmetic_suite.single_path_kernel,
        ),
        Workload(
            name="branchy-kernel",
            description="the original branchy kernel the single-path variant is derived from",
            paper_section="2 Related Work (Puschner/Kirner)",
            build=arithmetic_suite.branchy_kernel,
        ),
    ]
    for rule, (violating, conforming) in loops_suite.VARIANTS.items():
        entries.append(
            Workload(
                name=f"rule-{rule}-violating",
                description=f"variant violating MISRA rule {rule}",
                paper_section=f"4.2 Rule {rule}",
                build=lambda rule=rule: loops_suite.violating_program(rule),
                annotations=lambda rule=rule: loops_suite.manual_annotations(rule),
            )
        )
        entries.append(
            Workload(
                name=f"rule-{rule}-conforming",
                description=f"conforming rewrite for MISRA rule {rule}",
                paper_section=f"4.2 Rule {rule}",
                build=lambda rule=rule: loops_suite.conforming_program(rule),
            )
        )
    entries.append(
        Workload(
            name="recursive-sum",
            description="recursive weighted sum (MISRA rule 16.2 violation)",
            paper_section="4.2 Rule 16.2",
            build=functions_suite.recursive_program,
            annotations=functions_suite.recursion_annotations,
        )
    )
    entries.append(
        Workload(
            name="iterative-sum",
            description="iterative rewrite of the weighted sum",
            paper_section="4.2 Rule 16.2",
            build=functions_suite.iterative_program,
        )
    )
    entries.append(
        Workload(
            name="variadic-sum",
            description="variadic-style argument summation (MISRA rule 16.1 violation)",
            paper_section="4.2 Rule 16.1",
            build=functions_suite.variadic_program,
            annotations=functions_suite.variadic_annotations,
        )
    )
    entries.append(
        Workload(
            name="fixed-arity-sum",
            description="fixed-arity rewrite of the argument summation",
            paper_section="4.2 Rule 16.1",
            build=functions_suite.fixed_arity_program,
        )
    )
    entries.append(
        Workload(
            name="dispatch",
            description="event dispatch through a function pointer (tier-one challenge)",
            paper_section="3.2 Function Pointers",
            build=pointer_suite.dispatch_program,
        )
    )
    return {workload.name: workload for workload in entries}


def workload_names() -> List[str]:
    return sorted(catalog())


def get_workload(name: str) -> Workload:
    try:
        return catalog()[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(workload_names())}"
        ) from exc
