"""Monitor task with error handling (Section 4.3, "Error Handling").

A periodic monitor checks a set of system conditions; every check can trigger
its (expensive) error handler.  Statically nothing rules out all handlers
firing in the same activation, so the plain analysis charges all of them — the
"safe but uncommon or simply infeasible" assumption the paper describes.  Two
documented scenarios tighten this:

* ``single_fault`` — the safety analysis established that at most one fault
  can be present per activation (bounds the sum of handler executions by 1);
* ``errors_excluded`` — error handling is not relevant for the worst case of
  this task (all handler blocks become infeasible), e.g. because it is timed
  separately.
"""

from __future__ import annotations

from repro.annotations import AnnotationSet, ErrorScenario
from repro.ir.program import Program
from repro.minic.codegen import compile_source

#: Number of words logged by each error handler.
LOG_WORDS = 24

SOURCE = f"""
/* Periodic monitor with per-condition error handlers. */
int sensor_value[4];
int limit_low[4];
int limit_high[4];
int error_log[{LOG_WORDS}];
int error_count;

int log_error(int code) {{
    int i;
    for (i = 0; i < {LOG_WORDS}; i++) {{
        error_log[i] = error_log[i] + code;
    }}
    error_count = error_count + 1;
    return error_count;
}}

int monitor(void) {{
    int status = 0;
    if (sensor_value[0] < limit_low[0]) {{
handle_undervoltage:
        status = status + log_error(1);
    }}
    if (sensor_value[1] > limit_high[1]) {{
handle_overvoltage:
        status = status + log_error(2);
    }}
    if (sensor_value[2] > limit_high[2]) {{
handle_overtemperature:
        status = status + log_error(3);
    }}
    if (sensor_value[3] < limit_low[3]) {{
handle_underpressure:
        status = status + log_error(4);
    }}
    return status;
}}

int main(void) {{
    return monitor();
}}
"""

#: The labels of the four error-handler blocks inside ``monitor``.
HANDLER_LABELS = (
    "handle_undervoltage",
    "handle_overvoltage",
    "handle_overtemperature",
    "handle_underpressure",
)


def source() -> str:
    """Mini-C source of the monitor task."""
    return SOURCE


def program(entry: str = "monitor") -> Program:
    """The compiled monitor task."""
    return compile_source(SOURCE, entry=entry)


def annotations() -> AnnotationSet:
    """Annotation set containing both documented error scenarios."""
    annotation_set = AnnotationSet()

    single_fault = ErrorScenario(
        name="single_fault",
        max_simultaneous=1,
        justification="the fault-tree analysis shows faults are independent and "
        "the monitor period is shorter than any double-fault window",
    )
    for label in HANDLER_LABELS:
        single_fault.add_handler("monitor", label)
    annotation_set.add_error_scenario(single_fault)

    errors_excluded = ErrorScenario(
        name="errors_excluded",
        max_simultaneous=0,
        justification="error handling is budgeted in a separate recovery task "
        "and is not part of this task's deadline",
    )
    for label in HANDLER_LABELS:
        errors_excluded.add_handler("monitor", label)
    annotation_set.add_error_scenario(errors_excluded)

    return annotation_set
