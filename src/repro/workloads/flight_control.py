"""Dual-mode flight-control task (operating modes, Section 4.3).

The task mimics the paper's example of a flight control unit with *plane is on
ground* and *plane is in air* modes: the two modes execute mutually exclusive
code with very different worst-case paths (the airborne control law iterates
over all control surfaces and runs the attitude filter; the ground path only
polls the landing gear).  The mode flag is set by other software, so the
analysis cannot exclude either path by itself — only the operating-mode
annotations can.
"""

from __future__ import annotations

from repro.annotations import AnnotationSet, OperatingMode
from repro.annotations.flowfacts import InfeasiblePath
from repro.ir.program import Program
from repro.minic.codegen import compile_source

#: Number of control surfaces processed by the airborne control law.
NUM_SURFACES = 12
#: Number of filter taps of the attitude filter.
FILTER_TAPS = 16
#: Number of landing-gear sensors polled in ground mode.
NUM_GEAR_SENSORS = 3

SOURCE = f"""
/* Dual-mode flight control task (ground / air). */
int operating_mode;              /* 0 = on ground, 1 = in air; set elsewhere */
int surface_command[{NUM_SURFACES}];
int surface_feedback[{NUM_SURFACES}];
int attitude_history[{FILTER_TAPS}];
int gear_sensor[{NUM_GEAR_SENSORS}];
int gear_status;
int attitude_estimate;

int filter_attitude(int sample) {{
    int i;
    int acc = 0;
    for (i = 0; i < {FILTER_TAPS} - 1; i++) {{
        attitude_history[i] = attitude_history[i + 1];
        acc = acc + attitude_history[i];
    }}
    attitude_history[{FILTER_TAPS} - 1] = sample;
    acc = acc + sample;
    return acc / {FILTER_TAPS};
}}

int control_law(int estimate) {{
    int i;
    int effort = 0;
    for (i = 0; i < {NUM_SURFACES}; i++) {{
        int error = surface_feedback[i] - estimate;
        int command = error * 3 + surface_command[i] / 2;
        surface_command[i] = command;
        effort = effort + command;
    }}
    return effort;
}}

int poll_landing_gear(void) {{
    int i;
    int status = 0;
    for (i = 0; i < {NUM_GEAR_SENSORS}; i++) {{
        status = status + gear_sensor[i];
    }}
    return status;
}}

int main(void) {{
    int effort = 0;
    if (operating_mode == 0) {{
ground_branch:
        gear_status = poll_landing_gear();
        effort = gear_status * 2;
    }} else {{
air_branch:
        attitude_estimate = filter_attitude(surface_feedback[0]);
        effort = control_law(attitude_estimate);
        effort = effort + control_law(attitude_estimate / 2);
    }}
    return effort;
}}
"""

def source() -> str:
    """Mini-C source of the flight-control task."""
    return SOURCE


def program() -> Program:
    """The compiled flight-control task."""
    return compile_source(SOURCE)


def annotations() -> AnnotationSet:
    """Operating-mode annotations: ground and air exclude each other's branch.

    The labels ``ground_branch`` / ``air_branch`` are ordinary C labels placed
    on the first statement of each branch — exactly the kind of documentation
    the paper asks designers to provide during the design phase.
    """
    annotation_set = AnnotationSet()
    ground = OperatingMode(
        name="ground",
        description="plane is on ground: the airborne control law cannot run",
    )
    ground.add(InfeasiblePath(function="main", location="air_branch", mode="ground"))
    air = OperatingMode(
        name="air",
        description="plane is in air: the landing-gear polling branch cannot run",
    )
    air.add(InfeasiblePath(function="main", location="ground_branch", mode="air"))
    annotation_set.add_mode(ground)
    annotation_set.add_mode(air)
    return annotation_set
