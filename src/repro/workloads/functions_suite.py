"""Function-shape variants for MISRA rules 16.1 (varargs) and 16.2 (recursion).

* Rule 16.1: a variadic-style "sum of n values" whose processing loop depends
  on the caller-supplied count, vs. a fixed-arity version over a fixed-size
  array.  (Mini-C compiles the variadic declaration with its named parameters;
  the point of the experiment is the data-dependent argument-processing loop,
  which is faithfully present.)
* Rule 16.2: recursive vs. iterative computation of the same result.  The
  recursive variant can only be analysed with a recursion-depth annotation,
  and its bound scales with the annotated depth.
"""

from __future__ import annotations

from repro.annotations import AnnotationSet
from repro.ir.program import Program
from repro.minic.codegen import compile_source

#: Number of elements processed by the fixed-arity variants.
FIXED_COUNT = 8
#: Maximum recursion depth documented for the recursive variant.
RECURSION_DEPTH = 8

# --------------------------------------------------------------------------- #
# Rule 16.1
# --------------------------------------------------------------------------- #
VARIADIC_SOURCE = f"""
int argument_area[{FIXED_COUNT}];

/* sum_values(count, ...) walks the variable argument area: the loop trip
   count depends on what every caller passes. */
int sum_values(int count, ...) {{
    int i;
    int total = 0;
    for (i = 0; i < count; i++) {{
        total = total + argument_area[i];
    }}
    return total;
}}

int main(void) {{
    return sum_values({FIXED_COUNT});
}}
"""

FIXED_ARITY_SOURCE = f"""
int argument_area[{FIXED_COUNT}];

int sum_values(void) {{
    int i;
    int total = 0;
    for (i = 0; i < {FIXED_COUNT}; i++) {{
        total = total + argument_area[i];
    }}
    return total;
}}

int main(void) {{
    return sum_values();
}}
"""

# --------------------------------------------------------------------------- #
# Rule 16.2
# --------------------------------------------------------------------------- #
RECURSIVE_SOURCE = f"""
int weights[{FIXED_COUNT}];

int weighted_sum(int index) {{
    if (index >= {FIXED_COUNT}) {{
        return 0;
    }}
    return weights[index] + weighted_sum(index + 1);
}}

int main(void) {{
    return weighted_sum(0);
}}
"""

ITERATIVE_SOURCE = f"""
int weights[{FIXED_COUNT}];

int weighted_sum(void) {{
    int i;
    int total = 0;
    for (i = 0; i < {FIXED_COUNT}; i++) {{
        total = total + weights[i];
    }}
    return total;
}}

int main(void) {{
    return weighted_sum();
}}
"""


def variadic_program() -> Program:
    return compile_source(VARIADIC_SOURCE)


def fixed_arity_program() -> Program:
    return compile_source(FIXED_ARITY_SOURCE)


def recursive_program() -> Program:
    return compile_source(RECURSIVE_SOURCE)


def iterative_program() -> Program:
    return compile_source(ITERATIVE_SOURCE)


def variadic_annotations() -> AnnotationSet:
    """The argument-count range a designer would document for rule 16.1."""
    annotation_set = AnnotationSet()
    annotation_set.add_argument_range("sum_values", "r3", 0, FIXED_COUNT)
    return annotation_set


def recursion_annotations(depth: int = RECURSION_DEPTH + 1) -> AnnotationSet:
    """The recursion-depth bound a designer would document for rule 16.2."""
    annotation_set = AnnotationSet()
    annotation_set.add_recursion_bound("weighted_sum", depth)
    return annotation_set
