"""Loop-structure variant pairs for MISRA rules 13.4, 13.6, 14.1, 14.4, 14.5.

Each experiment compares a *violating* variant with a *conforming* rewrite of
the same computation, so the benchmarks can show what the violation costs the
WCET analysis: no automatic bound at all (13.4, 13.6, 14.4), extra analysed
paths (14.1), or — the paper's counterpoint — nothing at all (14.5).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.annotations import AnnotationSet
from repro.ir.program import Program
from repro.minic.codegen import compile_source

#: Iterations of the accumulation loops in all variants.
ITERATIONS = 32

# --------------------------------------------------------------------------- #
# Rule 13.4 — float-controlled loop vs. integer-controlled loop
# --------------------------------------------------------------------------- #
FLOAT_LOOP_SOURCE = f"""
int samples[{ITERATIONS}];
int main(void) {{
    float f;
    int acc = 0;
    int i = 0;
    for (f = 0.0; f < {ITERATIONS}.0; f = f + 1.0) {{
        acc = acc + samples[i];
        i = i + 1;
    }}
    return acc;
}}
"""

INT_LOOP_SOURCE = f"""
int samples[{ITERATIONS}];
int main(void) {{
    int i;
    int acc = 0;
    for (i = 0; i < {ITERATIONS}; i++) {{
        acc = acc + samples[i];
    }}
    return acc;
}}
"""

# --------------------------------------------------------------------------- #
# Rule 13.6 — counter modified in the body vs. clean counter loop
# --------------------------------------------------------------------------- #
MODIFIED_COUNTER_SOURCE = f"""
int samples[{ITERATIONS}];
int main(void) {{
    int i;
    int acc = 0;
    for (i = 0; i < {ITERATIONS}; i++) {{
        acc = acc + samples[i];
        if (samples[i] < 0) {{
            i = i + samples[i];
        }}
    }}
    return acc;
}}
"""

CLEAN_COUNTER_SOURCE = f"""
int samples[{ITERATIONS}];
int main(void) {{
    int i;
    int acc = 0;
    int skip = 0;
    for (i = 0; i < {ITERATIONS}; i++) {{
        if (skip == 0) {{
            acc = acc + samples[i];
        }}
        if (samples[i] < 0) {{
            skip = 1;
        }}
    }}
    return acc;
}}
"""

# --------------------------------------------------------------------------- #
# Rule 14.1 — unreachable (debug) code left in vs. removed
# --------------------------------------------------------------------------- #
# ``debug_enabled`` is a global that the deployed system never sets, so the
# guarded dump loop is dead code in practice — but a static analysis cannot
# know that and has to include the path in the worst case (the paper's point:
# removing unreachable code removes a source of over-approximation).
DEAD_CODE_SOURCE = f"""
int samples[{ITERATIONS}];
int debug_dump[{ITERATIONS}];
int debug_enabled;
int main(void) {{
    int i;
    int acc = 0;
    for (i = 0; i < {ITERATIONS}; i++) {{
        acc = acc + samples[i];
    }}
    if (debug_enabled) {{
debug_path:
        for (i = 0; i < {ITERATIONS}; i++) {{
            debug_dump[i] = samples[i] * 17;
            acc = acc + debug_dump[i];
        }}
    }}
    return acc;
}}
"""

NO_DEAD_CODE_SOURCE = INT_LOOP_SOURCE

# --------------------------------------------------------------------------- #
# Rule 14.4 — goto creating an irreducible loop vs. structured loop
# --------------------------------------------------------------------------- #
GOTO_IRREDUCIBLE_SOURCE = f"""
int samples[{ITERATIONS}];
int main(void) {{
    int i = 0;
    int acc = 0;
    if (samples[0] > 0) {{
        goto body;
    }}
head:
    acc = acc + 1;
body:
    acc = acc + samples[i];
    i = i + 1;
    if (i < {ITERATIONS}) {{
        goto head;
    }}
    return acc;
}}
"""

STRUCTURED_LOOP_SOURCE = f"""
int samples[{ITERATIONS}];
int main(void) {{
    int i;
    int acc = 0;
    int first = 1;
    for (i = 0; i < {ITERATIONS}; i++) {{
        if (first == 0 || samples[0] <= 0) {{
            acc = acc + 1;
        }}
        acc = acc + samples[i];
        first = 0;
    }}
    return acc;
}}
"""

# --------------------------------------------------------------------------- #
# Rule 14.5 — continue vs. if/else rewrite (bounds must match)
# --------------------------------------------------------------------------- #
CONTINUE_SOURCE = f"""
int samples[{ITERATIONS}];
int main(void) {{
    int i;
    int acc = 0;
    for (i = 0; i < {ITERATIONS}; i++) {{
        if (samples[i] == 0) {{
            continue;
        }}
        acc = acc + samples[i];
    }}
    return acc;
}}
"""

IF_ELSE_SOURCE = f"""
int samples[{ITERATIONS}];
int main(void) {{
    int i;
    int acc = 0;
    for (i = 0; i < {ITERATIONS}; i++) {{
        if (samples[i] != 0) {{
            acc = acc + samples[i];
        }}
    }}
    return acc;
}}
"""

#: Variant registry: experiment id -> (violating source, conforming source).
VARIANTS: Dict[str, Tuple[str, str]] = {
    "13.4": (FLOAT_LOOP_SOURCE, INT_LOOP_SOURCE),
    "13.6": (MODIFIED_COUNTER_SOURCE, CLEAN_COUNTER_SOURCE),
    "14.1": (DEAD_CODE_SOURCE, NO_DEAD_CODE_SOURCE),
    "14.4": (GOTO_IRREDUCIBLE_SOURCE, STRUCTURED_LOOP_SOURCE),
    "14.5": (CONTINUE_SOURCE, IF_ELSE_SOURCE),
}


def violating_program(rule: str) -> Program:
    return compile_source(VARIANTS[rule][0])


def conforming_program(rule: str) -> Program:
    return compile_source(VARIANTS[rule][1])


def manual_annotations(rule: str) -> AnnotationSet:
    """The manual annotations needed to analyse the *violating* variant at all.

    The bound is the designer's knowledge of the loop's true behaviour —
    exactly what the paper says must be documented when the structure defeats
    the automatic analysis.
    """
    annotation_set = AnnotationSet()
    if rule == "13.4":
        annotation_set.add_loop_bound(
            "main", "loop_7", ITERATIONS, comment="float counter steps by 1.0 up to 32.0"
        )
    elif rule == "13.6":
        annotation_set.add_loop_bound(
            "main", "loop_6", ITERATIONS, comment="counter only ever decreased on negative samples"
        )
    elif rule == "14.4":
        annotation_set.add_loop_bound(
            "main", "head", ITERATIONS, comment="the goto loop executes at most 32 times"
        )
    return annotation_set
