"""CAN-style message handler (data-dependent algorithms, Section 4.3).

The paper's example: message-based communication with fixed-size read and
write buffers reserved per scheduling cycle.  During the interrupt handler the
message data is copied either *from* or *to* memory depending on the current
scheduling cycle — the two directions can never occur in the same activation,
and the amount of data is fixed at design time — but neither fact is visible
to a static analysis of the code alone.  The annotations below supply exactly
those two facts:

* an :class:`~repro.annotations.flowfacts.ArgumentRange` bounding the length
  argument (which bounds the copy loops automatically), and
* a mutual-exclusion flow constraint between the read path and the write path.
"""

from __future__ import annotations

from repro.annotations import AnnotationSet
from repro.ir.program import Program
from repro.minic.codegen import compile_source

#: Capacity (in words) of the per-cycle message buffers.
BUFFER_WORDS = 16

SOURCE = f"""
/* CAN-style message handler with per-cycle read and write buffers.
   rx_pending and tx_pending are set by the communication stack; the scheduler
   guarantees that a single activation only ever serves one direction, but the
   code structure alone does not show that. */
int rx_buffer[{BUFFER_WORDS}];
int tx_buffer[{BUFFER_WORDS}];
int app_inbox[{BUFFER_WORDS}];
int app_outbox[{BUFFER_WORDS}];
int checksum;

int handle_message(int rx_pending, int tx_pending, int length) {{
    int i;
    int sum = 0;
    if (rx_pending) {{
read_path:
        for (i = 0; i < length; i++) {{
            app_inbox[i] = rx_buffer[i];
            sum = sum + rx_buffer[i];
        }}
    }}
    if (tx_pending) {{
write_path:
        for (i = 0; i < length; i++) {{
            tx_buffer[i] = app_outbox[i];
            sum = sum + app_outbox[i];
        }}
    }}
    checksum = sum;
    return sum;
}}

int main(void) {{
    int result;
    result = handle_message(1, 0, {BUFFER_WORDS});
    return result;
}}
"""


def source() -> str:
    """Mini-C source of the message handler."""
    return SOURCE


def program(entry: str = "handle_message") -> Program:
    """The compiled message handler (default entry: the handler itself)."""
    return compile_source(SOURCE, entry=entry)


def annotations(with_length_bound: bool = True, with_exclusion: bool = True) -> AnnotationSet:
    """Design-level facts for the handler.

    ``with_length_bound`` adds the argument-range fact ``length in [0, 16]``
    (bounds both copy loops); ``with_exclusion`` adds the read/write mutual
    exclusion.  Disabling them lets the benchmarks show the cost of not
    documenting each piece of information.
    """
    annotation_set = AnnotationSet()
    if with_length_bound:
        # length is the third parameter -> argument register r5.
        annotation_set.add_argument_range("handle_message", "r5", 0, BUFFER_WORDS)
    if with_exclusion:
        annotation_set.add_flow_constraint(
            "handle_message",
            [("read_path", 1), ("write_path", 1)],
            "<=",
            1,
            name="read/write cycles are mutually exclusive",
        )
    return annotation_set


def fallback_loop_bounds() -> AnnotationSet:
    """Loop-bound-only annotations (what a designer would write without the
    argument-range mechanism): both copy loops iterate at most BUFFER_WORDS
    times.  The loop labels are looked up from the compiled program so the
    annotation stays valid if the source is reformatted."""
    annotation_set = AnnotationSet()
    compiled = program()
    for label in compiled.function("handle_message").labels():
        if label.startswith("loop_"):
            annotation_set.add_loop_bound(
                "handle_message", label, BUFFER_WORDS, comment="buffer capacity"
            )
    return annotation_set
