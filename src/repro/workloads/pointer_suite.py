"""Pointer-related workloads: dynamic memory (rule 20.4), imprecise device
accesses (Section 4.3 "Imprecise Memory Accesses"), non-local jumps (rule
20.7) and function-pointer dispatch (Section 3.2 "Function Pointers")."""

from __future__ import annotations

from typing import List, Tuple

from repro.annotations import AnnotationSet
from repro.ir.instructions import Opcode
from repro.ir.program import Program
from repro.minic.codegen import compile_source

#: Number of words processed by the buffer workloads.
BUFFER_WORDS = 16

# --------------------------------------------------------------------------- #
# Rule 20.4 — heap-allocated buffer vs. static buffer
# --------------------------------------------------------------------------- #
HEAP_BUFFER_SOURCE = f"""
int seed;

int main(void) {{
    int i;
    int acc = 0;
    int *buffer = malloc({BUFFER_WORDS * 4});
    for (i = 0; i < {BUFFER_WORDS}; i++) {{
        buffer[i] = seed + i;
    }}
    for (i = 0; i < {BUFFER_WORDS}; i++) {{
        acc = acc + buffer[i];
    }}
    return acc;
}}
"""

STATIC_BUFFER_SOURCE = f"""
int seed;
int buffer[{BUFFER_WORDS}];

int main(void) {{
    int i;
    int acc = 0;
    for (i = 0; i < {BUFFER_WORDS}; i++) {{
        buffer[i] = seed + i;
    }}
    for (i = 0; i < {BUFFER_WORDS}; i++) {{
        acc = acc + buffer[i];
    }}
    return acc;
}}
"""

# --------------------------------------------------------------------------- #
# Rule 20.7 — setjmp/longjmp error exit vs. structured status return
# --------------------------------------------------------------------------- #
LONGJMP_SOURCE = f"""
int jump_buffer[8];
int samples[{BUFFER_WORDS}];

int process(int index) {{
    if (samples[index] < 0) {{
        longjmp(jump_buffer, 1);
    }}
    return samples[index] * 2;
}}

int main(void) {{
    int i;
    int acc = 0;
    if (setjmp(jump_buffer)) {{
        return -1;
    }}
    for (i = 0; i < {BUFFER_WORDS}; i++) {{
        acc = acc + process(i);
    }}
    return acc;
}}
"""

STRUCTURED_ERROR_SOURCE = f"""
int samples[{BUFFER_WORDS}];

int process(int index) {{
    if (samples[index] < 0) {{
        return -1;
    }}
    return samples[index] * 2;
}}

int main(void) {{
    int i;
    int acc = 0;
    for (i = 0; i < {BUFFER_WORDS}; i++) {{
        int value = process(i);
        if (value < 0) {{
            return -1;
        }}
        acc = acc + value;
    }}
    return acc;
}}
"""

# --------------------------------------------------------------------------- #
# Imprecise memory accesses — CAN driver touching device registers through a
# pointer the analysis cannot resolve.
# --------------------------------------------------------------------------- #
DEVICE_DRIVER_SOURCE = f"""
int can_registers[{BUFFER_WORDS}];
int mailbox_index;
int application_state[{BUFFER_WORDS}];

/* The driver receives a pointer computed from a runtime mailbox index; the
   analysis only sees an unknown pointer. */
int read_mailbox(int *mailbox) {{
    int i;
    int sum = 0;
    for (i = 0; i < 4; i++) {{
        sum = sum + mailbox[i];
    }}
    return sum;
}}

int can_driver(void) {{
    int value = read_mailbox(&can_registers[mailbox_index]);
    application_state[0] = value;
    return value;
}}

int main(void) {{
    return can_driver();
}}
"""


def heap_program() -> Program:
    return compile_source(HEAP_BUFFER_SOURCE)


def static_program() -> Program:
    return compile_source(STATIC_BUFFER_SOURCE)


def longjmp_program() -> Program:
    return compile_source(LONGJMP_SOURCE)


def structured_error_program() -> Program:
    return compile_source(STRUCTURED_ERROR_SOURCE)


def device_driver_program(entry: str = "can_driver") -> Program:
    return compile_source(DEVICE_DRIVER_SOURCE, entry=entry)


def device_driver_annotations(regions: Tuple[str, ...] = ("ram",)) -> AnnotationSet:
    """Memory-region annotation: the driver's unknown accesses stay in RAM.

    (The ``can_registers`` mailbox array lives in normal RAM in this model; in
    a configuration where it is placed into the device region the annotation
    would name ``("ram", "device")`` — the benchmark sweeps both.)
    """
    annotation_set = AnnotationSet()
    annotation_set.add_memory_regions("read_mailbox", regions)
    annotation_set.add_memory_regions("can_driver", regions)
    return annotation_set


# --------------------------------------------------------------------------- #
# Function-pointer dispatch (tier-one challenge of Section 3.2)
# --------------------------------------------------------------------------- #
DISPATCH_SOURCE = f"""
int event_code;
int payload[{BUFFER_WORDS}];

int handle_fast(void) {{
    return payload[0] + payload[1];
}}

int handle_slow(void) {{
    int i;
    int acc = 0;
    for (i = 0; i < {BUFFER_WORDS}; i++) {{
        acc = acc + payload[i] * 3;
    }}
    return acc;
}}

int main(void) {{
    int *handler;
    if (event_code == 0) {{
        handler = &handle_fast;
    }} else {{
        handler = &handle_slow;
    }}
    return handler();
}}
"""


def dispatch_program() -> Program:
    return compile_source(DISPATCH_SOURCE)


def dispatch_annotations(program: Program) -> AnnotationSet:
    """Call-target hints for the indirect call in ``main``.

    The hint lists both handlers — the designer's knowledge of the event
    table.  Without it the CFG reconstruction stops with a tier-one error.
    """
    annotation_set = AnnotationSet()
    for instr in program.function("main").instructions:
        if instr.opcode is Opcode.ICALL:
            annotation_set.add_call_targets(instr.address, ["handle_fast", "handle_slow"])
    return annotation_set
