"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.hardware.processor import leon2_like, simple_scalar
from repro.ir.asmparser import parse_assembly


COUNTER_LOOP_ASM = """
.data buf 64 init=1,2,3,4,5,6,7,8
.func main
    mov r3, 0
    mov r4, 0
    la r6, buf
loop:
    load r7, [r6 + 0]
    add r3, r3, r7
    add r6, r6, 4
    add r4, r4, 1
    slt r5, r4, 8
    bt r5, loop
    call scale
    halt
.func scale params=1
    mul r3, r3, 3
    ret
"""


@pytest.fixture
def counter_loop_program():
    """A small two-function program with an 8-iteration counter loop."""
    return parse_assembly(COUNTER_LOOP_ASM)


@pytest.fixture
def scalar_processor():
    return simple_scalar()


@pytest.fixture
def cached_processor():
    return leon2_like()
