"""Tests for the value analysis, loop-bound analysis, reachability and liveness."""

from __future__ import annotations

import pytest

from repro.analysis import (
    LoopBoundAnalysis,
    ValueAnalysis,
    compute_liveness,
    find_unreachable_code,
)
from repro.analysis.domains.interval import Interval
from repro.analysis.domains.memstate import AbstractValue
from repro.cfg import find_loops, reconstruct_cfg
from repro.ir import Interpreter, parse_assembly


def analyse(asm: str, function: str = "main", initial_registers=None):
    program = parse_assembly(asm)
    cfg, _ = reconstruct_cfg(program, function)
    loops = find_loops(cfg)
    values = ValueAnalysis(
        program, cfg, loops, initial_registers=initial_registers or {}
    ).run()
    bounds = LoopBoundAnalysis(cfg, loops, values).run()
    return program, cfg, loops, values, bounds


COUNTER_LOOP = """
.func main
    mov r4, 0
loop:
    add r4, r4, 1
    slt r5, r4, 10
    bt r5, loop
    halt
"""


class TestValueAnalysis:
    def test_constant_propagation(self):
        asm = ".func main\n    mov r3, 4\n    add r3, r3, 6\n    mul r3, r3, 2\n    halt\n"
        program, cfg, loops, values, _ = analyse(asm)
        exit_state = values.edge_state(cfg.entry_block, -2)
        assert exit_state.get("r3").constant_value == 20

    def test_branch_refinement_narrows_intervals(self):
        asm = (
            ".func main params=1\n"
            "    slt r5, r3, 10\n"
            "    bf r5, big\n"
            "    mov r4, 1\n"
            "    halt\n"
            "big:\n"
            "    mov r4, 2\n"
            "    halt\n"
        )
        program, cfg, loops, values, _ = analyse(
            asm, initial_registers={"r3": AbstractValue(Interval(0, 100))}
        )
        blocks = cfg.node_ids()
        small_block, big_block = blocks[1], blocks[2]
        assert values.state_at_block_entry(small_block).get("r3").interval == Interval(0, 9)
        assert values.state_at_block_entry(big_block).get("r3").interval == Interval(10, 100)

    def test_constant_condition_marks_edge_infeasible(self):
        asm = (
            ".func main\n"
            "    mov r5, 0\n"
            "    bt r5, dead\n"
            "    mov r3, 1\n"
            "    halt\n"
            "dead:\n"
            "    mov r3, 99\n"
            "    halt\n"
        )
        program, cfg, loops, values, _ = analyse(asm)
        dead_block = cfg.node_ids()[2]
        assert not values.state_at_block_entry(dead_block).reachable
        assert dead_block in values.semantically_unreachable_blocks()

    def test_loop_counter_interval_is_widened_but_bounded_by_refinement(self):
        program, cfg, loops, values, bounds = analyse(COUNTER_LOOP)
        header = loops.loops[0].header
        counter = values.state_at_block_entry(header).get("r4").interval
        assert counter.contains(0) and counter.contains(9)

    def test_load_address_resolution(self):
        asm = (
            ".data table 32 readonly init=7\n"
            ".func main\n"
            "    la r6, table\n"
            "    load r3, [r6 + 0]\n"
            "    halt\n"
        )
        program, cfg, loops, values, _ = analyse(asm)
        accesses = list(values.accesses.values())
        assert len(accesses) == 1
        assert accesses[0].bases == frozenset({"table"})
        assert accesses[0].absolute.is_constant

    def test_readonly_initial_data_is_known(self):
        asm = (
            ".data table 16 readonly init=5,6\n"
            ".func main\n"
            "    la r6, table\n"
            "    load r3, [r6 + 4]\n"
            "    halt\n"
        )
        program, cfg, loops, values, _ = analyse(asm)
        exit_state = values.edge_state(cfg.node_ids()[-1], -2)
        assert exit_state.get("r3").constant_value == 6

    def test_unknown_pointer_access_is_flagged(self):
        asm = ".func main params=1\n    load r4, [r3 + 0]\n    halt\n"
        program, cfg, loops, values, _ = analyse(asm)
        access = list(values.accesses.values())[0]
        assert access.unknown

    def test_call_clobbers_caller_saved_registers(self):
        asm = (
            ".func main\n    mov r3, 5\n    mov r14, 7\n    call helper\n    halt\n"
            ".func helper\n    ret\n"
        )
        program, cfg, loops, values, _ = analyse(asm)
        exit_state = values.edge_state(cfg.node_ids()[-1], -2)
        assert exit_state.get("r3").is_top          # caller-saved: forgotten
        assert exit_state.get("r14").constant_value == 7  # callee-saved: kept

    def test_soundness_against_interpreter(self, counter_loop_program):
        """Every concrete register value must lie in its abstract interval."""
        program = counter_loop_program
        cfg, _ = reconstruct_cfg(program, "main")
        loops = find_loops(cfg)
        values = ValueAnalysis(program, cfg, loops).run()
        result = Interpreter(program).run()
        final_r4 = result.registers["r4"]
        exit_sources = cfg.exit_blocks()
        joined = Interval.bottom()
        for source in exit_sources:
            state = values.edge_state(source, -2)
            if state.reachable:
                joined = joined.join(state.get("r4").interval)
        assert joined.contains(final_r4)


class TestLoopBounds:
    def test_simple_counter_loop(self):
        *_, bounds = analyse(COUNTER_LOOP)
        assert bounds.all_bounded
        assert list(bounds.bounds.values())[0].max_back_edges == 10

    def test_counting_down_loop(self):
        asm = (
            ".func main\n    mov r4, 16\nloop:\n    sub r4, r4, 2\n"
            "    sgt r5, r4, 0\n    bt r5, loop\n    halt\n"
        )
        *_, bounds = analyse(asm)
        assert list(bounds.bounds.values())[0].max_back_edges == 8

    def test_not_equal_exit_condition(self):
        asm = (
            ".func main\n    mov r4, 0\nloop:\n    add r4, r4, 1\n"
            "    sne r5, r4, 12\n    bt r5, loop\n    halt\n"
        )
        *_, bounds = analyse(asm)
        assert list(bounds.bounds.values())[0].max_back_edges == 12

    def test_step_greater_than_one(self):
        asm = (
            ".func main\n    mov r4, 0\nloop:\n    add r4, r4, 3\n"
            "    slt r5, r4, 10\n    bt r5, loop\n    halt\n"
        )
        *_, bounds = analyse(asm)
        assert list(bounds.bounds.values())[0].max_back_edges == 4  # ceil(10/3)

    def test_interpreter_never_exceeds_bound(self):
        program, cfg, loops, values, bounds = analyse(COUNTER_LOOP)
        result = Interpreter(program).run()
        header = loops.loops[0].header
        bound = bounds.bounds[header]
        assert result.trace.block_counts[header] <= bound.max_header_executions

    def test_data_dependent_loop_fails(self):
        asm = (
            ".func main params=1\n    mov r4, 0\nloop:\n    add r4, r4, 1\n"
            "    slt r5, r4, r3\n    bt r5, loop\n    halt\n"
        )
        *_, bounds = analyse(asm)
        assert not bounds.all_bounded
        assert list(bounds.failures.values())[0].reason in (
            "data-dependent-limit",
            "unknown-initial-value",
        )

    def test_argument_range_makes_data_dependent_loop_bounded(self):
        asm = (
            ".func main params=1\n    mov r4, 0\nloop:\n    add r4, r4, 1\n"
            "    slt r5, r4, r3\n    bt r5, loop\n    halt\n"
        )
        *_, bounds = analyse(
            asm, initial_registers={"r3": AbstractValue(Interval(0, 16))}
        )
        assert bounds.all_bounded
        assert list(bounds.bounds.values())[0].max_back_edges == 16

    def test_float_condition_fails_with_specific_reason(self):
        asm = (
            ".func main\n    mov r4, 0\n    itof r8, r4\n    mov r9, 10\n    itof r9, r9\n"
            "loop:\n    mov r10, 1\n    itof r10, r10\n    fadd r8, r8, r10\n"
            "    fslt r5, r8, r9\n    bt r5, loop\n    halt\n"
        )
        *_, bounds = analyse(asm)
        assert list(bounds.failures.values())[0].reason == "float-condition"

    def test_complex_update_fails(self):
        asm = (
            ".func main params=1\n    mov r4, 1\nloop:\n    mul r4, r4, 2\n"
            "    slt r5, r4, 100\n    bt r5, loop\n    halt\n"
        )
        *_, bounds = analyse(asm)
        assert list(bounds.failures.values())[0].reason == "complex-update"

    def test_irreducible_loop_fails(self):
        asm = (
            ".func main\n    mov r3, 0\n    bt r3, middle\nhead:\n    add r3, r3, 1\n"
            "middle:\n    add r3, r3, 2\n    slt r4, r3, 20\n    bt r4, head\n    halt\n"
        )
        *_, bounds = analyse(asm)
        assert any(f.reason == "irreducible" for f in bounds.failures.values())

    def test_annotation_overrides_failure(self):
        asm = (
            ".func main params=1\n    mov r4, 0\nloop:\n    add r4, r4, 1\n"
            "    slt r5, r4, r3\n    bt r5, loop\n    halt\n"
        )
        *_, bounds = analyse(asm)
        header = list(bounds.failures)[0]
        bounds.add_annotation(header, 32, detail="designer bound")
        assert bounds.all_bounded
        assert bounds.bounds[header].source == "annotation"

    def test_diverging_loop_detected(self):
        asm = (
            ".func main\n    mov r4, 10\nloop:\n    add r4, r4, 1\n"
            "    sgt r5, r4, 0\n    bt r5, loop\n    halt\n"
        )
        *_, bounds = analyse(asm)
        assert list(bounds.failures.values())[0].reason == "diverging"


class TestReachabilityAndLiveness:
    def test_structurally_dead_block(self):
        asm = (
            ".func main\n    br end\n    mov r3, 1\nend:\n    halt\n"
        )
        program = parse_assembly(asm)
        cfg, _ = reconstruct_cfg(program, "main")
        report = find_unreachable_code(cfg)
        assert report.structurally_unreachable
        assert report.dead_instruction_count >= 1

    def test_semantically_dead_branch(self):
        asm = (
            ".func main\n    mov r5, 1\n    bt r5, taken\n    mov r3, 0\n    halt\n"
            "taken:\n    mov r3, 1\n    halt\n"
        )
        program = parse_assembly(asm)
        cfg, _ = reconstruct_cfg(program, "main")
        loops = find_loops(cfg)
        values = ValueAnalysis(program, cfg, loops).run()
        report = find_unreachable_code(cfg, values)
        assert report.semantically_unreachable

    def test_clean_program_has_no_dead_code(self, counter_loop_program):
        cfg, _ = reconstruct_cfg(counter_loop_program, "main")
        report = find_unreachable_code(cfg)
        assert not report.has_unreachable_code

    def test_liveness_of_loop_counter(self):
        program = parse_assembly(COUNTER_LOOP)
        cfg, _ = reconstruct_cfg(program, "main")
        liveness = compute_liveness(cfg)
        loop_header = find_loops(cfg).loops[0].header
        assert "r4" in liveness.live_in[loop_header]

    def test_dead_store_detection(self):
        asm = ".func main\n    mov r9, 42\n    mov r3, 1\n    halt\n"
        program = parse_assembly(asm)
        cfg, _ = reconstruct_cfg(program, "main")
        liveness = compute_liveness(cfg)
        assert any(i.defined_register() == "r9" for i in liveness.dead_stores)
