"""Tests for the design-level annotation framework and its text format."""

from __future__ import annotations

import pytest

from repro.annotations import (
    AnnotationSet,
    ErrorScenario,
    OperatingMode,
    parse_annotations,
)
from repro.annotations.flowfacts import FlowConstraint, InfeasiblePath, LoopBoundAnnotation
from repro.errors import AnnotationError, ParseError


class TestAnnotationSet:
    def test_builders_and_queries(self):
        annotations = (
            AnnotationSet()
            .add_loop_bound("task", "copy_loop", 16)
            .add_flow_constraint("task", [("read", 1), ("write", 1)], "<=", 1)
            .add_infeasible("task", "debug")
            .add_recursion_bound("traverse", 4)
            .add_argument_range("task", "r3", 0, 16)
            .add_memory_regions("driver", ["ram", "device"])
        )
        assert annotations.loop_bounds_for("task")[0].max_iterations == 16
        assert annotations.flow_constraints_for("task")[0].relation == "<="
        assert annotations.infeasible_for("task")[0].location == "debug"
        assert annotations.recursion_bound_for("traverse").max_depth == 4
        assert annotations.argument_ranges_for("task")[0].high == 16
        assert annotations.memory_regions_for("driver").regions == ("ram", "device")
        assert annotations.summary()["loop_bounds"] == 1

    def test_negative_loop_bound_rejected(self):
        with pytest.raises(AnnotationError):
            LoopBoundAnnotation("f", "loop", -1)

    def test_empty_argument_range_rejected(self):
        with pytest.raises(AnnotationError):
            AnnotationSet().add_argument_range("f", "r3", 5, 1)

    def test_bad_flow_relation_rejected(self):
        with pytest.raises(AnnotationError):
            FlowConstraint("f", (("a", 1),), "<", 1)

    def test_mode_merging(self):
        annotations = AnnotationSet()
        ground = OperatingMode("ground")
        ground.add(InfeasiblePath("task", "air_branch", mode="ground"))
        ground.add(LoopBoundAnnotation("task", "gear", 3, mode="ground"))
        annotations.add_mode(ground)

        base = annotations.for_mode(None)
        assert not base.infeasible_for("task")
        merged = annotations.for_mode("ground")
        assert merged.infeasible_for("task")
        assert merged.loop_bounds_for("task")[0].max_iterations == 3

    def test_unknown_mode_rejected(self):
        with pytest.raises(AnnotationError):
            AnnotationSet().for_mode("orbit")

    def test_duplicate_mode_rejected(self):
        annotations = AnnotationSet().add_mode(OperatingMode("ground"))
        with pytest.raises(AnnotationError):
            annotations.add_mode(OperatingMode("ground"))

    def test_error_scenario_lowering_exclusion(self):
        scenario = ErrorScenario("excluded", max_simultaneous=0)
        scenario.add_handler("monitor", "handle_a").add_handler("monitor", "handle_b")
        infeasible, constraints = scenario.to_flow_facts()
        assert len(infeasible) == 2 and not constraints

    def test_error_scenario_lowering_bound(self):
        scenario = ErrorScenario("single", max_simultaneous=1)
        scenario.add_handler("monitor", "handle_a").add_handler("monitor", "handle_b")
        infeasible, constraints = scenario.to_flow_facts()
        assert not infeasible and constraints[0].bound == 1
        assert len(constraints[0].terms) == 2

    def test_with_error_scenario(self):
        annotations = AnnotationSet()
        scenario = ErrorScenario("single", max_simultaneous=1)
        scenario.add_handler("monitor", "handle_a")
        annotations.add_error_scenario(scenario)
        applied = annotations.with_error_scenario("single")
        assert applied.flow_constraints_for("monitor")

    def test_merge_two_sets(self):
        first = AnnotationSet().add_loop_bound("f", "l", 4)
        second = AnnotationSet().add_recursion_bound("g", 2)
        merged = first.merge(second)
        assert merged.loop_bounds_for("f") and merged.recursion_bound_for("g")

    def test_control_flow_hints(self):
        annotations = AnnotationSet().add_call_targets(0x1040, ["a", "b"])
        assert annotations.control_flow_hints.call_targets(0x1040) == ("a", "b")


class TestAnnotationParser:
    TEXT = """
    # loop bounds
    loopbound handler.copy_loop 16
    flow handler: read_path + write_path <= 1
    infeasible main.debug_dump disabled in production
    recursion traverse 4
    argrange handler r3 0 16
    memregions can_driver ram,device
    calltargets 0x1040 handler_a,handler_b
    branchtargets 0x1080 case0,case1

    mode ground {
        infeasible flight.air_branch
        loopbound flight.gear_loop 3
    }

    errorscenario single_fault max=1 {
        handler monitor.handle_overvoltage
        handler monitor.handle_undervoltage
    }
    """

    def test_full_round_trip(self):
        annotations = parse_annotations(self.TEXT)
        assert annotations.loop_bounds_for("handler")[0].max_iterations == 16
        assert annotations.flow_constraints_for("handler")[0].bound == 1
        assert annotations.infeasible_for("main")
        assert annotations.recursion_bound_for("traverse").max_depth == 4
        assert annotations.argument_ranges_for("handler")[0].register == "r3"
        assert annotations.memory_regions_for("can_driver").regions == ("ram", "device")
        assert annotations.control_flow_hints.call_targets(0x1040) == ("handler_a", "handler_b")
        assert annotations.control_flow_hints.branch_targets(0x1080) == ("case0", "case1")
        assert "ground" in annotations.modes
        assert annotations.modes["ground"].loop_bounds()[0].max_iterations == 3
        assert annotations.error_scenarios[0].max_simultaneous == 1
        assert len(annotations.error_scenarios[0].handlers) == 2

    def test_flow_constraint_with_coefficients(self):
        annotations = parse_annotations("flow f: 2*a + b >= 3")
        constraint = annotations.flow_constraints_for("f")[0]
        assert constraint.terms == (("a", 2), ("b", 1))
        assert constraint.relation == ">=" and constraint.bound == 3

    def test_addresses_as_locations(self):
        annotations = parse_annotations("loopbound f.0x1014 8")
        assert annotations.loop_bounds_for("f")[0].location == 0x1014

    def test_unknown_keyword_rejected(self):
        with pytest.raises(ParseError):
            parse_annotations("frobnicate f.loop 3")

    def test_unclosed_mode_block_rejected(self):
        with pytest.raises(ParseError):
            parse_annotations("mode ground {\nloopbound f.l 3\n")

    def test_bad_location_rejected(self):
        with pytest.raises(ParseError):
            parse_annotations("loopbound justafunction 3")
