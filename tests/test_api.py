"""Tests of the repro.api facade: Project/Service, JSON schema, CLI, shims.

The serialisation tests are property-style: randomised report objects (seeded
generators, dozens of draws) must survive ``to_json -> json text -> from_json``
*exactly* — dataclass equality, field for field.  The CLI test pins the
acceptance criterion of the facade redesign: ``python -m repro analyze --json``
on the flight-control workload produces the same WCET/BCET values as the
pre-redesign ``WCETAnalyzer`` API.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.api import (
    CACHE_ENV_VAR,
    AnalysisRequest,
    AnalysisResult,
    AnalysisService,
    Project,
    ProjectError,
    SchemaError,
    from_json,
    resolve_summary_store,
    to_json,
)
from repro.api.cli import main as cli_main
from repro.cache import SummaryStore, configure
from repro.guidelines.checker import GuidelineReport
from repro.guidelines.finding import ChallengeTier, Finding, Severity
from repro.hardware.pipeline import BlockTimeBounds
from repro.hardware.processor import simple_scalar
from repro.wcet.analyzer import WCETAnalyzer
from repro.wcet.report import (
    ChallengeReport,
    FunctionReport,
    LoopReport,
    PhaseTiming,
    WCETReport,
)
from repro.workloads import flight_control


def roundtrip(obj):
    """to_json -> real JSON text -> from_json (the cross-process path)."""
    return from_json(json.loads(json.dumps(to_json(obj))))


# --------------------------------------------------------------------------- #
# Randomised report builders (seeded — the draws are deterministic per test)
# --------------------------------------------------------------------------- #
def make_block_times(rng: random.Random) -> BlockTimeBounds:
    bcet = rng.randrange(0, 500)
    return BlockTimeBounds(
        block_id=rng.randrange(0, 1 << 16),
        wcet_cycles=bcet + rng.randrange(0, 500),
        bcet_cycles=bcet,
        fetch_cycles=rng.randrange(0, 100),
        compute_cycles=rng.randrange(0, 100),
        memory_cycles=rng.randrange(0, 100),
        branch_cycles=rng.randrange(0, 10),
    )


def make_loop_report(rng: random.Random) -> LoopReport:
    bounded = rng.random() < 0.7
    return LoopReport(
        function=rng.choice(["main", "isr", "control_law"]),
        header=rng.randrange(0, 1 << 20),
        bound=rng.randrange(1, 4096) if bounded else None,
        source=rng.choice(["analysis", "annotation", "unbounded"]),
        irreducible=rng.random() < 0.2,
        failure_reason="" if bounded else "no-counter",
        detail=rng.choice(["", "i in [0, 16)", "annotated: ring buffer"]),
    )


def make_function_report(rng: random.Random, name: str = "main") -> FunctionReport:
    blocks = [make_block_times(rng) for _ in range(rng.randrange(1, 6))]
    bcet = rng.randrange(0, 10_000)
    return FunctionReport(
        name=name,
        wcet_cycles=bcet + rng.randrange(0, 100_000),
        bcet_cycles=bcet,
        loop_reports=[make_loop_report(rng) for _ in range(rng.randrange(0, 4))],
        block_times={bounds.block_id: bounds for bounds in blocks},
        block_counts={bounds.block_id: rng.randrange(0, 64) for bounds in blocks},
        icache_summary={"AH": rng.randrange(0, 40), "NC": rng.randrange(0, 5)},
        dcache_summary={"AM": rng.randrange(0, 40)},
        unreachable_blocks=sorted(rng.sample(range(64), rng.randrange(0, 3))),
        imprecise_accesses=rng.randrange(0, 9),
        unknown_accesses=rng.randrange(0, 9),
        callee_wcet={rng.randrange(0, 1 << 20): rng.randrange(0, 9999)},
        ilp_nodes=rng.randrange(1, 12),
        context=rng.choice(["main", "scale[r3=[0,15]]", ""]),
    )


def make_wcet_report(rng: random.Random) -> WCETReport:
    functions = {
        name: make_function_report(rng, name)
        for name in rng.sample(["main", "isr", "control_law", "filter"], 2)
    }
    entry = next(iter(functions))
    return WCETReport(
        entry=entry,
        processor=rng.choice(["simple-scalar", "leon2-like"]),
        wcet_cycles=functions[entry].wcet_cycles,
        bcet_cycles=functions[entry].bcet_cycles,
        functions=functions,
        phases=[
            PhaseTiming("decoding", rng.random() / 7, "128 basic blocks"),
            PhaseTiming("path analysis", rng.random() / 3),
        ],
        challenges=ChallengeReport(
            tier_one=[f"t1 #{rng.randrange(99)}"] * rng.randrange(0, 3),
            tier_two=[f"t2 #{rng.randrange(99)}"] * rng.randrange(0, 3),
        ),
        mode=rng.choice([None, "ground", "air"]),
        error_scenario=rng.choice([None, "single_fault"]),
        annotation_summary={"loop_bounds": rng.randrange(0, 9)},
    )


def make_finding(rng: random.Random) -> Finding:
    return Finding(
        rule=rng.choice(["13.4", "16.2", "20.4"]),
        title="rule title",
        severity=rng.choice(list(Severity)),
        function=rng.choice(["main", ""]),
        line=rng.randrange(1, 500),
        message=f"violation #{rng.randrange(999)}",
        challenge=rng.choice(list(ChallengeTier)),
        wcet_impact=rng.choice(["", "loop bound not derivable"]),
    )


# --------------------------------------------------------------------------- #
class TestJsonRoundTrip:
    """Round-trip equals original, for every report type (satellite task)."""

    @pytest.mark.parametrize("seed", range(25))
    def test_function_report(self, seed):
        report = make_function_report(random.Random(seed))
        assert roundtrip(report) == report

    @pytest.mark.parametrize("seed", range(25))
    def test_wcet_report(self, seed):
        report = make_wcet_report(random.Random(seed))
        assert roundtrip(report) == report

    @pytest.mark.parametrize("seed", range(25))
    def test_challenge_report(self, seed):
        rng = random.Random(seed)
        report = ChallengeReport(
            tier_one=[f"m{rng.randrange(99)}" for _ in range(rng.randrange(4))],
            tier_two=[f"m{rng.randrange(99)}" for _ in range(rng.randrange(4))],
        )
        assert roundtrip(report) == report

    @pytest.mark.parametrize("seed", range(25))
    def test_guideline_finding(self, seed):
        finding = make_finding(random.Random(seed))
        assert roundtrip(finding) == finding

    @pytest.mark.parametrize("seed", range(10))
    def test_guideline_report(self, seed):
        rng = random.Random(seed)
        report = GuidelineReport(
            findings=[make_finding(rng) for _ in range(rng.randrange(0, 6))],
            rules_checked=["13.4", "16.2"],
        )
        assert roundtrip(report) == report

    @pytest.mark.parametrize("seed", range(10))
    def test_analysis_result(self, seed):
        rng = random.Random(seed)
        result = AnalysisResult(
            label="synthetic",
            entry="main",
            processor="simple-scalar",
            reports={
                None: make_wcet_report(rng),
                "ground": make_wcet_report(rng),
            },
            guidelines=GuidelineReport(
                findings=[make_finding(rng)], rules_checked=["20.4"]
            ),
            cache_stats={"tier1_hits": rng.randrange(99)},
            seconds=rng.random() * 10,
        )
        assert roundtrip(result) == result

    def test_real_analysis_result_roundtrips_exactly(self):
        """A full flight-control all-modes result survives JSON bit for bit."""
        project = Project.from_workload("flight-control", cache="off")
        result = AnalysisService(project).analyze(AnalysisRequest(all_modes=True))
        again = roundtrip(result)
        assert again == result
        # And the serialised forms are identical too (stable text output).
        assert json.dumps(to_json(again)) == json.dumps(to_json(result))

    def test_slim_report_roundtrips(self):
        project = Project.from_workload("flight-control", cache="off")
        report = AnalysisService(project).analyze().report.slim()
        assert roundtrip(report) == report

    def test_convenience_methods(self):
        rng = random.Random(7)
        report = make_wcet_report(rng)
        assert WCETReport.from_json(report.to_json()) == report
        finding = make_finding(rng)
        assert Finding.from_json(finding.to_json()) == finding


class TestSchemaValidation:
    def test_unknown_schema_version_rejected(self):
        data = to_json(make_wcet_report(random.Random(0)))
        data["schema"] = 99
        with pytest.raises(SchemaError, match="unsupported schema version"):
            from_json(data)

    def test_nested_unknown_version_rejected(self):
        data = to_json(make_wcet_report(random.Random(0)))
        next(iter(data["functions"].values()))["schema"] = 0
        with pytest.raises(SchemaError, match="unsupported schema version"):
            from_json(data)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError, match="unknown serialised kind"):
            from_json({"schema": 1, "kind": "FluxCapacitorReport"})

    def test_expected_kind_mismatch_rejected(self):
        data = to_json(ChallengeReport(tier_one=["x"]))
        with pytest.raises(SchemaError, match="expected a serialised WCETReport"):
            from_json(data, WCETReport)

    def test_missing_envelope_rejected(self):
        with pytest.raises(SchemaError):
            from_json({"entry": "main"})
        with pytest.raises(SchemaError):
            from_json([1, 2, 3])

    def test_missing_field_rejected(self):
        data = to_json(make_finding(random.Random(1)))
        del data["message"]
        with pytest.raises(SchemaError, match="missing field"):
            from_json(data)


# --------------------------------------------------------------------------- #
class TestProject:
    def test_exactly_one_source_required(self):
        with pytest.raises(ProjectError):
            Project()
        with pytest.raises(ProjectError):
            Project(source="int main(void) { return 0; }", assembly=".func main\n halt")

    def test_from_workload_accepts_both_spellings(self):
        for name in ("flight-control", "flight_control"):
            project = Project.from_workload(name, cache="off")
            assert project.entry == "main"
            assert project.annotations.mode_names() == ["air", "ground"]

    def test_unknown_processor_rejected(self):
        with pytest.raises(ProjectError, match="unknown processor"):
            Project.from_source("int main(void){return 0;}", processor="z80")

    def test_annotation_text_parsed(self):
        project = Project.from_source(
            "int main(void){return 0;}",
            annotations="recursion traverse 4\n",
        )
        assert project.annotations.recursion_bound_for("traverse").max_depth == 4

    def test_guidelines_need_source(self):
        project = Project.from_assembly(".func main\n    halt", cache="off")
        with pytest.raises(ProjectError, match="no mini-C source"):
            AnalysisService(project).check_guidelines()


class TestCachePrecedence:
    """Satellite task: one documented precedence order for cache wiring."""

    def test_precedence_order(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        configure(None)
        try:
            # off / None disable caching outright.
            assert resolve_summary_store("off") is None
            assert resolve_summary_store(None) is None
            # auto with nothing configured: no store.
            assert resolve_summary_store("auto") is None
            # auto + process-global default.
            configure(str(tmp_path / "global"))
            assert resolve_summary_store("auto").path == str(tmp_path / "global")
            # environment variable beats the global default.
            monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "env"))
            assert resolve_summary_store("auto").path == str(tmp_path / "env")
            # an explicit path beats both...
            explicit = resolve_summary_store(str(tmp_path / "explicit"))
            assert explicit.path == str(tmp_path / "explicit")
            # ...and "off" still wins over everything.
            assert resolve_summary_store("off") is None
            # A store instance is passed through untouched.
            store = SummaryStore(str(tmp_path / "inst"))
            assert resolve_summary_store(store) is store
        finally:
            configure(None)

    def test_project_resolves_once(self, tmp_path):
        project = Project.from_source(
            "int main(void){return 0;}", cache=str(tmp_path / "store")
        )
        assert project.summary_store() is project.summary_store()
        assert project.summary_store().path == str(tmp_path / "store")


# --------------------------------------------------------------------------- #
class TestServiceEquivalence:
    """The facade must reproduce the pre-redesign API's numbers exactly."""

    #: (wcet, bcet) of the flight-control workload on the default simple
    #: scalar, per mode, as computed by WCETAnalyzer before the facade
    #: redesign (and asserted against it live below).
    FLIGHT_CONTROL_PINS = {
        None: (2514, 87),
        "air": (2514, 284),
        "ground": (161, 87),
    }

    def test_facade_equals_legacy_analyzer(self):
        project = Project.from_workload("flight-control", cache="off")
        result = AnalysisService(project).analyze(AnalysisRequest(all_modes=True))
        legacy = WCETAnalyzer(
            flight_control.program(),
            simple_scalar(),
            annotations=flight_control.annotations(),
        ).analyze_all_modes()
        assert {
            mode: (r.wcet_cycles, r.bcet_cycles) for mode, r in result.reports.items()
        } == {
            mode: (r.wcet_cycles, r.bcet_cycles) for mode, r in legacy.items()
        }
        assert {
            mode: (r.wcet_cycles, r.bcet_cycles) for mode, r in result.reports.items()
        } == self.FLIGHT_CONTROL_PINS

    def test_analyze_many_matches_single_requests(self):
        project = Project.from_workload("message-handler", cache="off")
        service = AnalysisService(project)
        single = service.analyze(AnalysisRequest(label="one"))
        many = service.analyze_many(
            [AnalysisRequest(label="a"), AnalysisRequest(label="b")]
        )
        assert [r.wcet_cycles for r in many] == [single.wcet_cycles] * 2
        assert [r.bcet_cycles for r in many] == [single.bcet_cycles] * 2

    def test_all_modes_rejects_conflicting_mode(self):
        from repro.api import RequestError

        service = AnalysisService(Project.from_workload("flight-control", cache="off"))
        with pytest.raises(RequestError, match="all_modes"):
            service.analyze(AnalysisRequest(all_modes=True, mode="ground"))
        with pytest.raises(RequestError, match="all_modes"):
            service.analyze(
                AnalysisRequest(all_modes=True, error_scenario="single_fault")
            )

    def test_batch_off_cache_never_uses_global_store(self, tmp_path):
        """A facade-resolved "off" must stay off inside analyze_batch, even
        when a process-global default store is configured."""
        from repro.wcet.batch import AnalysisRequest as BatchRequest, analyze_batch

        project = Project.from_workload("message-handler", cache="off")
        request = BatchRequest(
            project.build(), project.processor, annotations=project.annotations
        )
        global_dir = tmp_path / "global-store"
        configure(str(global_dir))
        try:
            analyze_batch([request], jobs=1, use_default_store=False)
            assert not list(global_dir.glob("*.pkl")), (
                "cache='off' leaked into the process-global store"
            )
            # Sanity: the default behaviour does write through the store.
            analyze_batch([request], jobs=1)
            assert list(global_dir.glob("*.pkl"))
        finally:
            configure(None)


# --------------------------------------------------------------------------- #
class TestCli:
    def test_analyze_json_matches_pre_redesign_api(self, capsys):
        """Acceptance pin: the unified CLI reproduces the legacy values."""
        status = cli_main(
            ["analyze", "--workload", "flight_control", "--all-modes", "--json"]
        )
        assert status == 0
        data = json.loads(capsys.readouterr().out)
        result = from_json(data)
        assert isinstance(result, AnalysisResult)
        assert {
            mode: (r.wcet_cycles, r.bcet_cycles) for mode, r in result.reports.items()
        } == TestServiceEquivalence.FLIGHT_CONTROL_PINS
        # The emitted JSON round-trips through the schema unchanged.
        assert to_json(result) == data

    def test_analyze_text_output(self, capsys):
        status = cli_main(["analyze", "--workload", "message-handler"])
        assert status == 0
        out = capsys.readouterr().out
        assert "WCET bound" in out

    def test_analyze_error_exit_code(self, capsys, tmp_path):
        unbounded = tmp_path / "unbounded.c"
        unbounded.write_text(
            "int n;\nint main(void) { int i; int acc = 0;\n"
            "  for (i = 0; i < n; i++) { acc = acc + 1; }\n  return acc; }\n"
        )
        status = cli_main(["analyze", "--source", str(unbounded)])
        assert status == 1
        assert "error:" in capsys.readouterr().err

    def test_check_json_roundtrips(self, capsys):
        status = cli_main(["check", "examples/problematic.c", "--json"])
        assert status == 0
        data = json.loads(capsys.readouterr().out)
        report = from_json(data)
        assert isinstance(report, GuidelineReport)
        assert not report.is_clean
        assert to_json(report) == data

    def test_check_strict_fails_on_tier_one(self, capsys):
        status = cli_main(["check", "examples/problematic.c", "--strict"])
        assert status == 1

    def test_report_command_reads_saved_json(self, capsys, tmp_path):
        out_file = tmp_path / "result.json"
        status = cli_main(
            [
                "analyze",
                "--workload",
                "flight-control",
                "--json",
                "--output",
                str(out_file),
            ]
        )
        assert status == 0
        capsys.readouterr()
        status = cli_main(["report", str(out_file)])
        assert status == 0
        assert "WCET analysis of task" in capsys.readouterr().out

    def test_report_command_rejects_foreign_json(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 42, "kind": "WCETReport"}')
        # Malformed input is a usage error: exit 2 (documented contract).
        assert cli_main(["report", str(bad)]) == 2
        assert "unsupported schema version" in capsys.readouterr().err

    def test_analyze_all_modes_with_mode_is_an_error(self, capsys):
        status = cli_main(
            ["analyze", "--workload", "flight-control", "--all-modes",
             "--mode", "ground"]
        )
        assert status == 1
        assert "all_modes" in capsys.readouterr().err

    def test_analyze_workload_merges_annotation_file(self, tmp_path):
        from repro.api.cli import build_parser, _project_from_args

        extra = tmp_path / "extra.ann"
        extra.write_text("recursion traverse 4\n")
        args = build_parser().parse_args(
            ["analyze", "--workload", "flight-control",
             "--annotations", str(extra)]
        )
        project = _project_from_args(args)
        # Both the workload's own facts and the user's file survive the merge.
        assert project.annotations.mode_names() == ["air", "ground"]
        assert project.annotations.recursion_bound_for("traverse").max_depth == 4

    def test_sweep_output_requires_json(self, capsys, tmp_path):
        status = cli_main(
            ["sweep", "--count", "1", "--output", str(tmp_path / "s.txt")]
        )
        assert status == 2
        assert "--output requires --json" in capsys.readouterr().err

    def test_report_missing_or_malformed_file(self, capsys, tmp_path):
        # Unusable input exits 2 (usage error), never 0 or 1.
        assert cli_main(["report", str(tmp_path / "missing.json")]) == 2
        assert "error:" in capsys.readouterr().err
        notes = tmp_path / "notes.txt"
        notes.write_text("not json at all")
        assert cli_main(["report", str(notes)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_json_summary(self, capsys):
        status = cli_main(
            ["sweep", "--count", "2", "--base-seed", "11", "--json"]
        )
        assert status == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "SweepSummary"
        assert data["programs"] == 2
        assert data["violating"] == 0


class TestDeprecationShims:
    """Satellite task: the old module CLIs keep working, with a warning."""

    def test_testing_shim_delegates_to_sweep(self, capsys):
        import repro.testing.__main__ as legacy

        with pytest.warns(DeprecationWarning, match="python -m repro sweep"):
            status = legacy.main(["--count", "1", "--base-seed", "3"])
        assert status == 0
        assert "differential sweep: 1 programs" in capsys.readouterr().out

    def test_benchmarks_shim_delegates_to_bench(self, capsys):
        import repro.benchmarks.__main__ as legacy

        with pytest.warns(DeprecationWarning, match="python -m repro bench"):
            with pytest.raises(SystemExit) as excinfo:
                legacy.main(["--help"])
        assert excinfo.value.code == 0
        assert "usage: python -m repro bench" in capsys.readouterr().out
