"""Tests for the software-arithmetic package (lDivMod, restoring, soft-float,
fixed point, the Table 1 sampling harness)."""

from __future__ import annotations

import math
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.arith import (
    Fixed,
    PAPER_TABLE1_ROWS,
    RESTORING_ITERATIONS,
    SoftFloat,
    float_add,
    float_div,
    float_mul,
    float_sub,
    ldivmod,
    restoring_divmod,
    sample_iteration_histogram,
)

uint32 = st.integers(0, 2**32 - 1)
uint32_nonzero = st.integers(1, 2**32 - 1)


class TestLDivMod:
    @given(dividend=uint32, divisor=uint32_nonzero)
    @settings(max_examples=300, deadline=None)
    def test_quotient_and_remainder_are_exact(self, dividend, divisor):
        result = ldivmod(dividend, divisor)
        assert (result.quotient, result.remainder) == divmod(dividend, divisor)

    @given(dividend=uint32, divisor=uint32_nonzero)
    @settings(max_examples=200, deadline=None)
    def test_remainder_is_reduced(self, dividend, divisor):
        assert 0 <= ldivmod(dividend, divisor).remainder < divisor

    def test_division_by_zero_rejected(self):
        with pytest.raises(ReproError):
            ldivmod(5, 0)

    def test_out_of_range_operands_rejected(self):
        with pytest.raises(ReproError):
            ldivmod(2**32, 1)

    def test_small_dividend_takes_zero_iterations(self):
        assert ldivmod(1234, 5).iterations == 0

    def test_typical_large_operands_take_one_iteration(self):
        assert ldivmod(0x12345678, 0x00FF_0000).iterations == 1

    def test_directed_worst_case_is_huge(self):
        assert ldivmod(0xFFFF_FFFF, 3).iterations > 1000

    @given(dividend=uint32, divisor=uint32_nonzero)
    @settings(max_examples=200, deadline=None)
    def test_restoring_division_is_exact_and_constant_time(self, dividend, divisor):
        result = restoring_divmod(dividend, divisor)
        assert (result.quotient, result.remainder) == divmod(dividend, divisor)
        assert result.iterations == RESTORING_ITERATIONS


class TestSamplingHarness:
    def test_histogram_shape(self):
        histogram = sample_iteration_histogram(samples=50_000)
        assert histogram.samples == 50_000
        assert sum(histogram.counts.values()) == 50_000
        assert histogram.fraction_exactly(1) > 0.99
        assert histogram.fraction_at_most(2) > 0.999

    def test_histogram_is_deterministic(self):
        a = sample_iteration_histogram(samples=5_000, seed=7)
        b = sample_iteration_histogram(samples=5_000, seed=7)
        assert a.counts == b.counts and a.max_inputs == b.max_inputs

    def test_bucket_layout_matches_paper(self):
        histogram = sample_iteration_histogram(samples=2_000)
        labels = [label for label, _ in histogram.bucketed()]
        paper_labels = [label for label, _ in PAPER_TABLE1_ROWS]
        assert labels == paper_labels

    def test_format_table_mentions_worst_case(self):
        histogram = sample_iteration_histogram(samples=2_000)
        assert "worst observed" in histogram.format_table()

    def test_restoring_histogram_is_a_single_bar(self):
        histogram = sample_iteration_histogram(samples=2_000, divide=restoring_divmod)
        assert set(histogram.counts) == {RESTORING_ITERATIONS}


def _finite_floats():
    return st.floats(
        min_value=1e-30, max_value=1e30, allow_nan=False, allow_infinity=False
    ).map(lambda x: float(np.float32(x)))


class TestSoftFloat:
    @given(a=_finite_floats(), b=_finite_floats(), negate=st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_addition_matches_numpy_float32(self, a, b, negate):
        if negate:
            b = -b
        reference = float(np.float32(a) + np.float32(b))
        if not math.isfinite(reference) or (reference != 0 and abs(reference) < 1.2e-38):
            return
        result = float_add(SoftFloat.from_float(a), SoftFloat.from_float(b)).to_float()
        if reference == 0.0:
            assert abs(result) < 1e-37
        else:
            assert result == pytest.approx(reference, rel=2e-6)

    @given(a=_finite_floats(), b=_finite_floats())
    @settings(max_examples=200, deadline=None)
    def test_multiplication_matches_numpy_float32(self, a, b):
        reference_64 = float(a) * float(b)
        reference = float(np.float32(a) * np.float32(b))
        if not math.isfinite(reference) or abs(reference_64) < 1.2e-38 or abs(reference_64) > 3e38:
            return
        result = float_mul(SoftFloat.from_float(a), SoftFloat.from_float(b)).to_float()
        assert result == pytest.approx(reference, rel=2e-6)

    @given(a=_finite_floats(), b=_finite_floats())
    @settings(max_examples=200, deadline=None)
    def test_division_matches_numpy_float32(self, a, b):
        reference_64 = float(a) / float(b)
        reference = float(np.float32(a) / np.float32(b))
        if not math.isfinite(reference) or abs(reference_64) < 1.2e-38 or abs(reference_64) > 3e38:
            return
        result = float_div(SoftFloat.from_float(a), SoftFloat.from_float(b)).to_float()
        assert result == pytest.approx(reference, rel=2e-6)

    def test_subtraction_uses_negation(self):
        result = float_sub(SoftFloat.from_float(5.0), SoftFloat.from_float(3.0))
        assert result.to_float() == pytest.approx(2.0)

    def test_special_values(self):
        inf = SoftFloat.from_float(float("inf"))
        one = SoftFloat.from_float(1.0)
        assert float_add(inf, one).value.is_infinite
        assert math.isnan(float_sub(inf, inf).to_float())
        zero = SoftFloat.from_float(0.0)
        assert float_div(one, zero).value.is_infinite
        assert math.isnan(float_div(zero, zero).to_float())

    def test_normalisation_steps_are_data_dependent(self):
        close = float_sub(SoftFloat.from_float(1.0000001), SoftFloat.from_float(1.0))
        far = float_add(SoftFloat.from_float(1.0), SoftFloat.from_float(2.0))
        assert close.normalisation_steps > far.normalisation_steps


class TestFixedPoint:
    def test_round_trip(self):
        assert Fixed.from_float(3.25).to_float() == pytest.approx(3.25)
        assert Fixed.from_int(7).to_int() == 7

    def test_arithmetic(self):
        a = Fixed.from_float(2.5)
        b = Fixed.from_float(0.5)
        assert (a + b).to_float() == pytest.approx(3.0)
        assert (a - b).to_float() == pytest.approx(2.0)
        assert (a * b).to_float() == pytest.approx(1.25)
        assert (a / b).to_float() == pytest.approx(5.0)

    def test_division_by_zero_rejected(self):
        with pytest.raises(ReproError):
            Fixed.from_int(1) / Fixed.from_int(0)

    def test_saturation(self):
        big = Fixed.from_float(40000.0)
        assert (big * big).raw == 2**31 - 1

    def test_ordering(self):
        assert Fixed.from_float(1.5) < Fixed.from_float(2.0)
        assert Fixed.from_float(-1.0) <= Fixed.from_float(-1.0)

    @given(x=st.floats(-16000, 16000, allow_nan=False), y=st.floats(-16000, 16000, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_addition_close_to_real_arithmetic(self, x, y):
        # Operands are kept within half the Q16.16 range so the sum cannot
        # saturate (saturation behaviour is covered by test_saturation).
        result = (Fixed.from_float(x) + Fixed.from_float(y)).to_float()
        assert result == pytest.approx(x + y, abs=2e-4)
