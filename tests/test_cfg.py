"""Tests for CFG reconstruction, dominators, loops and the call graph."""

from __future__ import annotations

import pytest

from repro.errors import CFGError
from repro.cfg import (
    ControlFlowHints,
    build_callgraph,
    compute_dominators,
    find_loops,
    reconstruct_cfg,
    reconstruct_program,
)
from repro.cfg.graph import ENTRY, EXIT, EdgeKind
from repro.ir import parse_assembly

NESTED_LOOP_ASM = """
.func main
    mov r3, 0
    mov r4, 0
outer:
    mov r5, 0
inner:
    add r3, r3, r5
    add r5, r5, 1
    slt r6, r5, 4
    bt r6, inner
    add r4, r4, 1
    slt r6, r4, 3
    bt r6, outer
    halt
"""

IRREDUCIBLE_ASM = """
.func main
    mov r3, 0
    bt r3, middle
head:
    add r3, r3, 1
middle:
    add r3, r3, 2
    slt r4, r3, 20
    bt r4, head
    halt
"""

DIAMOND_ASM = """
.func main
    slt r4, r3, 10
    bf r4, big
    mov r5, 1
    br join
big:
    mov r5, 2
join:
    add r3, r3, r5
    halt
"""


class TestReconstruction:
    def test_block_count_of_diamond(self):
        cfg, issues = reconstruct_cfg(parse_assembly(DIAMOND_ASM), "main")
        assert cfg.num_blocks == 4
        assert not issues

    def test_every_block_ends_properly(self):
        cfg, _ = reconstruct_cfg(parse_assembly(NESTED_LOOP_ASM), "main")
        for block in cfg.blocks.values():
            # A block is either terminated or falls through to another block.
            assert cfg.successors(block.id)

    def test_entry_and_exit_edges(self):
        cfg, _ = reconstruct_cfg(parse_assembly(DIAMOND_ASM), "main")
        assert cfg.successors(ENTRY) == [cfg.entry_block]
        assert cfg.exit_blocks(), "halt block must connect to the virtual exit"

    def test_taken_and_fallthrough_edges(self):
        cfg, _ = reconstruct_cfg(parse_assembly(DIAMOND_ASM), "main")
        kinds = {edge.kind for edge in cfg.out_edges(cfg.entry_block)}
        assert kinds == {EdgeKind.TAKEN, EdgeKind.FALLTHROUGH}

    def test_unresolved_indirect_branch_is_strict_error(self):
        asm = ".func main\n    la r4, main\n    ibr r4\n    halt\n"
        with pytest.raises(CFGError):
            reconstruct_cfg(parse_assembly(asm), "main")

    def test_unresolved_indirect_branch_permissive_mode(self):
        asm = ".func main\n    la r4, main\n    ibr r4\n    halt\n"
        cfg, issues = reconstruct_cfg(parse_assembly(asm), "main", strict=False)
        assert issues and issues[0].kind == "indirect-branch"

    def test_indirect_branch_resolved_by_hints(self):
        asm = ".func main\n    la r4, main\nalt:\n    ibr r4\n    halt\n"
        program = parse_assembly(asm)
        address = program.function("main").instructions[1].address
        hints = ControlFlowHints()
        hints.add_branch_targets(address, ["alt"])
        cfg, issues = reconstruct_cfg(program, "main", hints=hints)
        assert not issues
        assert any(e.kind is EdgeKind.INDIRECT for e in cfg.edges())

    def test_reconstruct_program_covers_all_functions(self, counter_loop_program):
        cfgs, _ = reconstruct_program(counter_loop_program)
        assert set(cfgs) == {"main", "scale"}

    def test_block_containing(self):
        cfg, _ = reconstruct_cfg(parse_assembly(DIAMOND_ASM), "main")
        entry_block = cfg.block(cfg.entry_block)
        last_address = entry_block.instructions[-1].address
        assert cfg.block_containing(last_address).id == cfg.entry_block

    def test_reverse_postorder_starts_with_entry_block(self):
        cfg, _ = reconstruct_cfg(parse_assembly(NESTED_LOOP_ASM), "main")
        assert cfg.reverse_postorder()[0] == cfg.entry_block

    def test_dot_export_mentions_blocks(self):
        cfg, _ = reconstruct_cfg(parse_assembly(DIAMOND_ASM), "main")
        assert "digraph" in cfg.to_dot()


class TestDominators:
    def test_entry_block_dominates_everything(self):
        cfg, _ = reconstruct_cfg(parse_assembly(NESTED_LOOP_ASM), "main")
        dom = compute_dominators(cfg)
        for block in cfg.node_ids():
            assert dom.dominates(cfg.entry_block, block)

    def test_branches_do_not_dominate_join(self):
        cfg, _ = reconstruct_cfg(parse_assembly(DIAMOND_ASM), "main")
        dom = compute_dominators(cfg)
        blocks = cfg.node_ids()
        join = blocks[-1]
        then_block, else_block = blocks[1], blocks[2]
        assert not dom.dominates(then_block, join)
        assert not dom.dominates(else_block, join)
        assert dom.immediate_dominator(join) == cfg.entry_block

    def test_dominator_tree_children_partition(self):
        cfg, _ = reconstruct_cfg(parse_assembly(NESTED_LOOP_ASM), "main")
        dom = compute_dominators(cfg)
        children = dom.dominator_tree_children()
        all_children = [c for childs in children.values() for c in childs]
        assert len(all_children) == len(set(all_children))

    def test_dominance_frontier_of_branches_is_join(self):
        cfg, _ = reconstruct_cfg(parse_assembly(DIAMOND_ASM), "main")
        dom = compute_dominators(cfg)
        frontier = dom.dominance_frontier()
        blocks = cfg.node_ids()
        join = blocks[-1]
        assert join in frontier[blocks[1]]


class TestLoops:
    def test_nested_loops_detected_with_depths(self):
        cfg, _ = reconstruct_cfg(parse_assembly(NESTED_LOOP_ASM), "main")
        forest = find_loops(cfg)
        assert len(forest) == 2
        assert forest.max_depth() == 2
        inner = max(forest.loops, key=lambda l: l.depth)
        outer = min(forest.loops, key=lambda l: l.depth)
        assert inner.parent == outer.header
        assert inner.blocks < outer.blocks

    def test_reducible_program_has_no_irreducible_loops(self):
        cfg, _ = reconstruct_cfg(parse_assembly(NESTED_LOOP_ASM), "main")
        forest = find_loops(cfg)
        assert forest.reducible and not forest.has_irreducible

    def test_goto_into_loop_is_irreducible(self):
        cfg, _ = reconstruct_cfg(parse_assembly(IRREDUCIBLE_ASM), "main")
        forest = find_loops(cfg)
        assert not forest.reducible
        assert forest.has_irreducible
        irreducible = [loop for loop in forest.loops if loop.irreducible]
        assert irreducible and len(irreducible[0].entries) >= 2

    def test_loop_exit_edges_leave_the_loop(self):
        cfg, _ = reconstruct_cfg(parse_assembly(NESTED_LOOP_ASM), "main")
        forest = find_loops(cfg)
        for loop in forest.loops:
            for edge in loop.exit_edges(cfg):
                assert edge.source in loop.blocks
                assert edge.target not in loop.blocks

    def test_innermost_loop_query(self):
        cfg, _ = reconstruct_cfg(parse_assembly(NESTED_LOOP_ASM), "main")
        forest = find_loops(cfg)
        inner = max(forest.loops, key=lambda l: l.depth)
        assert forest.innermost_loop_of(inner.header) is inner

    def test_straight_line_code_has_no_loops(self):
        cfg, _ = reconstruct_cfg(parse_assembly(DIAMOND_ASM), "main")
        assert len(find_loops(cfg)) == 0


class TestCallGraph:
    def test_simple_call_edge(self, counter_loop_program):
        graph = build_callgraph(counter_loop_program)
        assert graph.callees("main") == {"scale"}
        assert graph.callers("scale") == {"main"}

    def test_bottom_up_order_puts_callees_first(self, counter_loop_program):
        order = build_callgraph(counter_loop_program).bottom_up_order()
        assert order.index("scale") < order.index("main")

    def test_recursion_detection(self):
        asm = (
            ".func main\n    call even\n    halt\n"
            ".func even\n    call odd\n    ret\n"
            ".func odd\n    call even\n    ret\n"
        )
        graph = build_callgraph(parse_assembly(asm))
        assert graph.has_recursion
        assert {"even", "odd"} in [set(c) for c in graph.recursive_cycles()]
        with pytest.raises(CFGError):
            graph.bottom_up_order()

    def test_self_recursion_detected(self):
        asm = ".func main\n    call main\n    halt\n"
        graph = build_callgraph(parse_assembly(asm))
        assert graph.recursive_functions() == {"main"}

    def test_indirect_call_needs_hints_in_strict_mode(self):
        asm = ".func main\n    la r4, helper\n    icall r4\n    halt\n.func helper\n    ret\n"
        with pytest.raises(CFGError):
            build_callgraph(parse_assembly(asm))

    def test_indirect_call_resolved_by_hints(self):
        asm = ".func main\n    la r4, helper\n    icall r4\n    halt\n.func helper\n    ret\n"
        program = parse_assembly(asm)
        address = program.function("main").instructions[1].address
        hints = ControlFlowHints()
        hints.add_call_targets(address, ["helper"])
        graph = build_callgraph(program, hints=hints)
        assert graph.callees("main") == {"helper"}
        assert any(site.indirect for site in graph.call_sites)

    def test_max_call_depth(self, counter_loop_program):
        graph = build_callgraph(counter_loop_program)
        assert graph.max_call_depth() == 2

    def test_reachability_from_entry(self, counter_loop_program):
        graph = build_callgraph(counter_loop_program)
        assert graph.reachable_from("main") == {"main", "scale"}

    def test_sccs_are_emitted_callees_first(self, counter_loop_program):
        components = build_callgraph(counter_loop_program).strongly_connected_components()
        flattened = [name for component in components for name in component]
        assert flattened.index("scale") < flattened.index("main")
