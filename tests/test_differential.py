"""Differential soundness tests: generated programs vs. the concrete machine.

The fast tier checks ``BCET bound <= observed cycles <= WCET bound`` (plus
loop-bound and unreachable-block consistency) on 50 deterministic seeds, and
replays every checked-in corpus seed.  The shrinker is exercised on a seeded
known-bad program (a deliberately wrong loop-bound annotation) and must
reduce it to a handful of lines.
"""

from __future__ import annotations

import pytest

from repro.hardware.processor import leon2_like
from repro.testing import (
    FeatureMix,
    GeneratedCase,
    OracleConfig,
    check_case,
    generate_case,
    load_corpus,
    render_case,
)
from repro.testing.generator import GFunction, GlobalVar, SAssign, SFor, SIf, SWhileBreak
from repro.testing.oracle import enumerate_inputs
from repro.testing.shrink import Shrinker

#: Fast-tier seeds: fixed, so failures are reproducible from the test id.
FAST_SEEDS = list(range(1, 51))
#: A few seeds re-checked on a cached processor (slower, so fewer).
CACHED_SEEDS = [3, 17, 42]

_FAST_CONFIG = OracleConfig(max_input_vectors=3)


class TestGenerator:
    def test_generation_is_deterministic(self):
        first = render_case(generate_case(7))
        second = render_case(generate_case(7))
        assert first.source == second.source
        assert len(first.annotations.loop_bounds) == len(second.annotations.loop_bounds)

    def test_distinct_seeds_differ(self):
        assert render_case(generate_case(1)).source != render_case(generate_case(2)).source

    def test_feature_mix_gates_features(self):
        mix = FeatureMix(allow_calls=False, allow_pointers=False)
        source = render_case(generate_case(11, mix=mix)).source
        assert "pw(" not in source
        assert "f0(" not in source

    def test_input_enumeration_covers_bounds_and_is_capped(self):
        inputs = [
            GlobalVar("in0", is_input=True, low=-8, high=8),
            GlobalVar("buf", length=8, is_input=True, low=0, high=3),
        ]
        vectors = enumerate_inputs(inputs, max_vectors=6, seed=1)
        assert len(vectors) == 6
        assert all(set(v) == {"in0", "buf"} for v in vectors)
        assert [-8] in [v["in0"] for v in vectors]
        repeat = enumerate_inputs(inputs, max_vectors=6, seed=1)
        assert vectors == repeat, "input enumeration must be deterministic"

    def test_no_inputs_yields_single_empty_vector(self):
        assert enumerate_inputs([], max_vectors=5) == [{}]


class TestSoundnessInvariant:
    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_generated_program_is_sound(self, seed):
        """BCET <= observed <= WCET for every enumerated input vector."""
        result = check_case(generate_case(seed), _FAST_CONFIG)
        assert result.runs, f"seed {seed}: no concrete runs executed"
        assert result.ok, f"seed {seed}: {[str(v) for v in result.violations]}"
        for run in result.runs:
            assert result.bcet_cycles <= run.observed_cycles <= result.wcet_cycles

    @pytest.mark.parametrize("seed", CACHED_SEEDS)
    def test_generated_program_is_sound_with_caches(self, seed):
        config = OracleConfig(processor_factory=leon2_like, max_input_vectors=2)
        result = check_case(generate_case(seed), config)
        assert result.ok, f"seed {seed}: {[str(v) for v in result.violations]}"


class TestCorpus:
    def _cases(self):
        cases = load_corpus()
        assert len(cases) >= 6, "corpus seeds are missing"
        return cases

    def test_corpus_loads(self):
        for case in self._cases():
            assert case.source.strip()
            assert case.description, f"{case.name}: corpus cases document why they exist"

    @pytest.mark.parametrize(
        "name",
        [
            "regress-branch-penalty-fallthrough",
            "regress-context-pointer-arg",
            "regress-xor-negative-constant",
            "adversarial-irreducible-goto-loop",
            "adversarial-deep-call-chain",
            "adversarial-aliasing-pointers",
            "adversarial-recursion-depth",
            "adversarial-fnptr-dual-target",
        ],
    )
    def test_corpus_case_stays_sound(self, name):
        case = next(c for c in load_corpus() if c.name == name)
        result = check_case(case, _FAST_CONFIG)
        assert result.ok, f"{name}: {[str(v) for v in result.violations]}"

    def test_aliasing_case_computes_correct_result(self):
        """The aliasing corpus program's functional result matches C semantics."""
        from repro.ir import Interpreter
        from repro.minic import compile_source

        case = next(c for c in load_corpus() if c.name == "adversarial-aliasing-pointers")
        program = compile_source(case.source, entry=case.entry)
        execution = Interpreter(program).run(case.entry)
        # g0=3, g1=4: mix(&g0,&g1) -> g0=13,g1=6; mix(&g0,&g0) -> g0=50;
        # mix(&g1,&g1) -> g1=22; total 72.
        assert execution.return_value == 72


def _known_bad_case() -> GeneratedCase:
    """A program whose loop annotation understates the real iteration count.

    The while loop runs 8 iterations but is annotated with 2, so the static
    WCET undercuts the observed time — a seeded, deterministic violation the
    shrinker must reduce to its essence (the loop), stripping the noise
    (helper function, extra loop, dead branches).
    """
    case = GeneratedCase(name="known-bad", seed=0)
    case.globals_.append(GlobalVar("in0", is_input=True))
    case.globals_.append(GlobalVar("g0", initial=2))
    case.functions.append(
        GFunction(
            name="f0",
            params=[],
            locals_=[("t", "1")],
            body=[SAssign("t", "t * 3"), SAssign("g0", "g0 + t")],
            return_expr="t",
        )
    )
    main = GFunction(name="main", params=[])
    main.locals_ = [("v0", "1"), ("i0", "0"), ("i1", "0"), ("acc", "0")]
    main.body = [
        SFor(var="i1", bound=4, body=[SAssign("acc", "acc + i1")]),
        SIf(cond="in0 > 0", then=[SAssign("acc", "acc + 1")], els=[SAssign("acc", "acc - 1")]),
        SWhileBreak(
            var="i0",
            bound=8,
            body=[SAssign("v0", "v0 + i0")],
            break_cond=None,
            annotate=2,   # deliberately wrong: the loop takes 8 iterations
        ),
        SAssign("g0", "g0 + acc"),
    ]
    main.return_expr = "v0"
    case.functions.append(main)
    return case


class TestShrinker:
    def test_known_bad_program_fails_the_oracle(self):
        result = check_case(_known_bad_case(), _FAST_CONFIG)
        assert not result.ok
        assert "wcet-undercut" in result.violation_kinds()

    def test_shrinker_minimises_known_bad_to_few_lines(self):
        shrunk = Shrinker(_FAST_CONFIG, max_checks=200).shrink(_known_bad_case())
        assert not shrunk.result.ok, "shrinking must preserve the violation"
        assert "wcet-undercut" in shrunk.result.violation_kinds()
        assert shrunk.line_count <= 15, render_case(shrunk.case).source
        # The essential ingredient — the badly annotated loop — must survive.
        assert "while" in render_case(shrunk.case).source

    def test_shrinker_rejects_sound_cases(self):
        with pytest.raises(ValueError):
            Shrinker(_FAST_CONFIG).shrink(generate_case(1))
