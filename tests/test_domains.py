"""Property-based tests of the abstract domains (intervals, congruences, state)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.domains.congruence import Congruence
from repro.analysis.domains.interval import Interval
from repro.analysis.domains.memstate import (
    STACK_BASE,
    AbstractMemory,
    AbstractState,
    AbstractValue,
)

small_ints = st.integers(-1000, 1000)


def intervals(draw_bounds=small_ints):
    """Strategy for (non-bottom) intervals, including half-open ones."""
    return st.builds(
        lambda a, b, open_lo, open_hi: Interval(
            None if open_lo else min(a, b), None if open_hi else max(a, b)
        ),
        small_ints,
        small_ints,
        st.booleans(),
        st.booleans(),
    )


def members(interval: Interval, candidates):
    return [value for value in candidates if interval.contains(value)]


# --------------------------------------------------------------------------- #
# Interval lattice laws
# --------------------------------------------------------------------------- #
class TestIntervalLattice:
    @given(intervals(), intervals())
    @settings(max_examples=200, deadline=None)
    def test_join_is_upper_bound(self, a, b):
        joined = a.join(b)
        assert joined.includes(a) and joined.includes(b)

    @given(intervals(), intervals())
    @settings(max_examples=200, deadline=None)
    def test_meet_is_lower_bound(self, a, b):
        met = a.meet(b)
        assert a.includes(met) and b.includes(met)

    @given(intervals())
    @settings(max_examples=100, deadline=None)
    def test_join_with_bottom_is_identity(self, a):
        assert a.join(Interval.bottom()) == a

    @given(intervals(), intervals())
    @settings(max_examples=200, deadline=None)
    def test_widening_over_approximates_join(self, a, b):
        widened = a.widen(b)
        assert widened.includes(a.join(b))

    @given(intervals())
    @settings(max_examples=100, deadline=None)
    def test_top_includes_everything(self, a):
        assert Interval.top().includes(a)

    def test_bottom_properties(self):
        bottom = Interval.bottom()
        assert bottom.is_bottom and not bottom.contains(0) and bottom.width() == 0

    def test_constant_interval(self):
        c = Interval.const(5)
        assert c.is_constant and c.constant_value == 5 and c.width() == 1


# --------------------------------------------------------------------------- #
# Interval arithmetic soundness: f(a) in F(A) whenever a in A
# --------------------------------------------------------------------------- #
class TestIntervalArithmeticSoundness:
    @given(intervals(), intervals(), small_ints, small_ints)
    @settings(max_examples=200, deadline=None)
    def test_add_sound(self, A, B, a, b):
        if A.contains(a) and B.contains(b):
            assert A.add(B).contains(a + b)

    @given(intervals(), intervals(), small_ints, small_ints)
    @settings(max_examples=200, deadline=None)
    def test_sub_sound(self, A, B, a, b):
        if A.contains(a) and B.contains(b):
            assert A.sub(B).contains(a - b)

    @given(intervals(), intervals(), small_ints, small_ints)
    @settings(max_examples=200, deadline=None)
    def test_mul_sound(self, A, B, a, b):
        if A.contains(a) and B.contains(b):
            assert A.mul(B).contains(a * b)

    @given(intervals(), intervals(), small_ints, small_ints)
    @settings(max_examples=200, deadline=None)
    def test_divide_sound(self, A, B, a, b):
        if b == 0 or not (A.contains(a) and B.contains(b)):
            return
        quotient = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            quotient = -quotient
        assert A.divide(B).contains(quotient)

    @given(intervals(), small_ints)
    @settings(max_examples=150, deadline=None)
    def test_neg_sound(self, A, a):
        if A.contains(a):
            assert A.neg().contains(-a)

    @given(st.integers(0, 4000), st.integers(0, 4000), st.integers(0, 8))
    @settings(max_examples=150, deadline=None)
    def test_shift_left_sound(self, a, b, shift):
        A = Interval(min(a, b), max(a, b))
        assert A.shift_left(Interval.const(shift)).contains(a << shift)

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=150, deadline=None)
    def test_bit_and_mask_bound(self, value, mask):
        A = Interval(0, 255)
        result = A.bit_and(Interval.const(mask))
        assert result.contains(value & mask)

    def test_compare_lt_definitive(self):
        assert Interval(0, 3).compare_lt(Interval(5, 9)) == Interval.const(1)
        assert Interval(10, 12).compare_lt(Interval(0, 9)) == Interval.const(0)
        assert Interval(0, 9).compare_lt(Interval(5, 6)) == Interval(0, 1)

    def test_refinement_lt(self):
        refined = Interval(0, 100).refine_lt(Interval.const(10))
        assert refined == Interval(0, 9)

    def test_refinement_ne_trims_endpoints(self):
        assert Interval(0, 10).refine_ne(Interval.const(10)) == Interval(0, 9)
        assert Interval(0, 10).refine_ne(Interval.const(0)) == Interval(1, 10)


# --------------------------------------------------------------------------- #
# Congruence domain
# --------------------------------------------------------------------------- #
congruences = st.builds(
    lambda m, o: Congruence(m, o), st.integers(0, 64), st.integers(-64, 64)
)


class TestCongruence:
    @given(congruences, congruences)
    @settings(max_examples=200, deadline=None)
    def test_join_is_upper_bound(self, a, b):
        joined = a.join(b)
        assert joined.includes(a) and joined.includes(b)

    @given(congruences, congruences, st.integers(-20, 20), st.integers(-20, 20))
    @settings(max_examples=200, deadline=None)
    def test_add_sound(self, A, B, ka, kb):
        a = A.offset + ka * A.modulus if not A.is_bottom else 0
        b = B.offset + kb * B.modulus if not B.is_bottom else 0
        if A.contains(a) and B.contains(b):
            assert A.add(B).contains(a + b)

    @given(congruences, congruences, st.integers(-10, 10), st.integers(-10, 10))
    @settings(max_examples=200, deadline=None)
    def test_mul_sound(self, A, B, ka, kb):
        a = A.offset + ka * A.modulus if not A.is_bottom else 0
        b = B.offset + kb * B.modulus if not B.is_bottom else 0
        if A.contains(a) and B.contains(b):
            assert A.mul(B).contains(a * b)

    def test_constants(self):
        c = Congruence.const(7)
        assert c.is_constant and c.contains(7) and not c.contains(8)

    def test_stride_membership(self):
        stride4 = Congruence(4, 2)
        assert stride4.contains(2) and stride4.contains(6) and not stride4.contains(4)

    def test_meet_incompatible_is_bottom(self):
        assert Congruence(4, 0).meet(Congruence(4, 1)).is_bottom

    def test_meet_compatible_crt(self):
        met = Congruence(4, 1).meet(Congruence(6, 3))
        assert not met.is_bottom
        assert met.contains(9) and met.contains(21)


# --------------------------------------------------------------------------- #
# Abstract values / memory / state
# --------------------------------------------------------------------------- #
class TestAbstractState:
    def test_address_values_keep_their_base(self):
        pointer = AbstractValue.address("buf", Interval.const(8))
        moved = pointer.add(AbstractValue.const(4))
        assert moved.bases == frozenset({"buf"})
        assert moved.interval == Interval.const(12)

    def test_pointer_difference_is_numeric(self):
        a = AbstractValue.address("buf", Interval.const(8))
        b = AbstractValue.address("buf", Interval.const(4))
        assert a.sub(b).bases == frozenset()

    def test_float_values_are_top_intervals(self):
        assert AbstractValue.float_value().interval.is_top

    def test_strong_update_then_load(self):
        memory = AbstractMemory()
        memory.store_strong("buf", 4, AbstractValue.const(42))
        assert memory.load("buf", 4).constant_value == 42

    def test_unknown_cell_is_top(self):
        assert AbstractMemory().load("buf", 0).is_top

    def test_weak_update_joins(self):
        memory = AbstractMemory()
        memory.store_strong("buf", 0, AbstractValue.const(1))
        memory.store_weak("buf", AbstractValue.const(5))
        loaded = memory.load("buf", 0)
        assert loaded.interval == Interval(1, 5)

    def test_clobber_all_keeps_selected_bases(self):
        memory = AbstractMemory()
        memory.store_strong(STACK_BASE, 0, AbstractValue.const(1))
        memory.store_strong("globals", 0, AbstractValue.const(2))
        memory.clobber_all(keep_bases={STACK_BASE})
        assert memory.load(STACK_BASE, 0).constant_value == 1
        assert memory.load("globals", 0).is_top

    def test_state_join_keeps_common_facts_only(self):
        a = AbstractState()
        b = AbstractState()
        a.set("r1", AbstractValue.const(1))
        b.set("r1", AbstractValue.const(3))
        joined = a.join(b)
        assert joined.get("r1").interval == Interval(1, 3)

    def test_setting_register_kills_dependent_facts(self):
        from repro.analysis.domains.memstate import PredicateFact
        from repro.ir.instructions import Opcode

        state = AbstractState()
        state.set("r1", AbstractValue.const(1))
        state.set_fact("r2", PredicateFact(Opcode.SLT, ("reg", "r1"), ("const", 5)))
        state.set("r1", AbstractValue.const(9))
        assert "r2" not in state.facts

    def test_unreachable_state_join_identity(self):
        state = AbstractState()
        state.set("r1", AbstractValue.const(4))
        joined = state.join(AbstractState.unreachable())
        assert joined.get("r1").constant_value == 4

    def test_includes_is_reflexive(self):
        state = AbstractState()
        state.set("r1", AbstractValue(Interval(0, 5)))
        assert state.includes(state)
