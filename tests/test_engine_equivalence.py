"""Engine-equivalence guard for the analyzer performance overhaul.

The WTO-scheduled heap worklist, the copy-on-write abstract states and the
sparse simplex are pure performance rebuilds: they must not change a single
analysis result.  This module pins the results the *pre-overhaul* engine
computed (corpus cases, 50 generator seeds, and the converged value-analysis
fixpoints of the two paper workloads) and asserts the current engine
reproduces them exactly.

If a future PR intentionally changes analysis precision, these pins must be
re-derived — the point is that such a change can never happen silently.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.analysis.value import ValueAnalysis
from repro.cfg.loops import find_loops
from repro.cfg.reconstruct import reconstruct_program
from repro.testing import check_case, generate_case, load_corpus
from repro.testing.oracle import OracleConfig
from repro.workloads import flight_control, message_handler

_CONFIG = OracleConfig(max_input_vectors=3)

#: (wcet, bcet) per generator seed, computed by the pre-overhaul engine
#: (PR 1 state, commit 857f3c6) with OracleConfig(max_input_vectors=3).
PINNED_SEED_BOUNDS = {
    1: (22745, 70),
    2: (8638, 205),
    3: (21170, 148),
    4: (2873, 67),
    5: (2248, 126),
    6: (2624, 388),
    7: (9250, 601),
    8: (67861, 148),
    9: (83, 83),
    10: (5172, 332),
    11: (16821, 415),
    12: (11248, 232),
    13: (34576, 119),
    14: (58500, 436),
    15: (95, 95),
    16: (9530, 167),
    17: (8974, 398),
    18: (783, 98),
    19: (1730, 332),
    20: (1304, 125),
    21: (29546, 118),
    22: (828, 153),
    23: (115, 115),
    24: (198, 198),
    25: (18794, 227),
    26: (17756, 517),
    27: (8486, 156),
    28: (256, 255),
    29: (164, 106),
    30: (155, 86),
    31: (674, 263),
    32: (5447, 382),
    33: (6778, 483),
    34: (102, 102),
    35: (23086, 154),
    36: (1338, 77),
    37: (1249, 208),
    38: (2385, 362),
    39: (53270, 101),
    40: (2279, 82),
    41: (616, 370),
    42: (23024, 270),
    43: (843, 297),
    44: (359, 75),
    45: (55, 55),
    46: (258, 67),
    47: (102, 102),
    48: (128, 128),
    49: (47948, 167),
    50: (5910, 341),
}

#: (wcet, bcet) per corpus case, same provenance.
PINNED_CORPUS_BOUNDS = {
    "adversarial-aliasing-pointers": (263, 263),
    "adversarial-deep-call-chain": (646, 646),
    "adversarial-irreducible-goto-loop": (104, 42),
    "regress-branch-penalty-fallthrough": (11, 11),
    "regress-context-pointer-arg": (78, 78),
    "regress-xor-negative-constant": (57, 35),
}

#: (state digest, solver iterations) of the converged value-analysis
#: fixpoint per workload function, same provenance.
PINNED_VALUE_FIXPOINTS = {
    "flight_control/control_law": ("7ed6cdb8c19c0611", 12),
    "flight_control/filter_attitude": ("0f6e5caee4bdae4c", 12),
    "flight_control/main": ("a9545e00697889f7", 6),
    "flight_control/poll_landing_gear": ("afbadc288fcd2c52", 12),
    "message_handler/handle_message": ("28e6365cd138c909", 26),
    "message_handler/main": ("5a87ca603aa4c2cb", 2),
}

def _state_digest(result) -> str:
    """Canonical digest of a converged per-block value-analysis fixpoint."""
    digest = hashlib.sha256()
    for block in sorted(result.block_in):
        state = result.block_in[block]
        digest.update(f"{block}|{state.reachable}|".encode())
        if state.reachable:
            registers = ",".join(
                f"{name}={value}"
                for name, value in sorted(state.registers.items())
                if not value.is_top
            )
            facts = ",".join(
                f"{register}:{fact.relation.value}:{fact.lhs}:{fact.rhs}"
                for register, fact in sorted(state.facts.items())
            )
            digest.update(f"{registers}|{state.memory}|{facts}".encode())
        digest.update(b"\n")
    return digest.hexdigest()[:16]


class TestSeedBounds:
    @pytest.mark.parametrize("seed", sorted(PINNED_SEED_BOUNDS))
    def test_seed_bounds_identical_to_pre_overhaul_engine(self, seed):
        result = check_case(generate_case(seed), _CONFIG)
        assert result.ok, f"seed {seed}: {[str(v) for v in result.violations]}"
        expected_wcet, expected_bcet = PINNED_SEED_BOUNDS[seed]
        assert (result.wcet_cycles, result.bcet_cycles) == (
            expected_wcet,
            expected_bcet,
        ), f"seed {seed}: bounds diverged from the pre-overhaul engine"


class TestCorpusBounds:
    @pytest.mark.parametrize("name", sorted(PINNED_CORPUS_BOUNDS))
    def test_corpus_bounds_identical_to_pre_overhaul_engine(self, name):
        case = next(c for c in load_corpus() if c.name == name)
        result = check_case(case, _CONFIG)
        assert result.ok, f"{name}: {[str(v) for v in result.violations]}"
        assert (result.wcet_cycles, result.bcet_cycles) == tuple(
            PINNED_CORPUS_BOUNDS[name]
        ), f"{name}: bounds diverged from the pre-overhaul engine"


class TestValueFixpoints:
    """The solver must produce identical block_in states, not just bounds."""

    @pytest.fixture(scope="class")
    def workload_results(self):
        results = {}
        for module, name in (
            (flight_control, "flight_control"),
            (message_handler, "message_handler"),
        ):
            program = module.program()
            program.validate()
            cfgs, _ = reconstruct_program(
                program,
                hints=module.annotations().control_flow_hints,
                strict=False,
            )
            for function_name, cfg in sorted(cfgs.items()):
                loops = find_loops(cfg)
                results[f"{name}/{function_name}"] = ValueAnalysis(
                    program, cfg, loops
                ).run()
        return results

    @pytest.mark.parametrize("key", sorted(PINNED_VALUE_FIXPOINTS))
    def test_fixpoint_states_identical(self, workload_results, key):
        expected_digest, expected_iterations = PINNED_VALUE_FIXPOINTS[key]
        result = workload_results[key]
        assert _state_digest(result) == expected_digest, (
            f"{key}: converged block_in states diverged from the "
            "pre-overhaul engine"
        )
        assert result.iterations == expected_iterations, (
            f"{key}: solver evaluation order changed "
            f"({result.iterations} != {expected_iterations} iterations)"
        )
