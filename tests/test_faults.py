"""The chaos harness's fault injectors (repro.testing.faults).

Everything here must be *deterministic from the seed* — that is the
injectors' core contract: a red chaos run reproduces exactly from its
printed seed, like the program-generator fuzz fleet.
"""

import http.client
import http.server
import json
import random
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cache import SummaryStore
from repro.testing import faults


@pytest.fixture(autouse=True)
def disarm():
    """Every test starts and ends with no plan armed and no worker mark."""
    faults.clear()
    faults._IN_WORKER = False
    yield
    faults.clear()
    faults._IN_WORKER = False


# --------------------------------------------------------------------------- #
# Plan plumbing
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = faults.FaultPlan(
            seed=7, kill_rate=0.25, hang_rate=0.5, hang_seconds=9.0,
            first_attempt_only=False,
        )
        assert faults.FaultPlan.from_json(plan.to_json()) == plan

    def test_install_active_clear(self):
        assert faults.active() is None
        plan = faults.FaultPlan(seed=3, kill_rate=1.0)
        faults.install(plan)
        assert faults.active() == plan
        faults.clear()
        assert faults.active() is None
        faults.clear()  # idempotent

    def test_malformed_env_var_reads_as_no_plan(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "{not json")
        assert faults.active() is None


class TestDecide:
    def test_deterministic_and_kind_independent(self):
        a = faults.decide(1, "kill", "job-a")
        assert a == faults.decide(1, "kill", "job-a")
        assert 0.0 <= a < 1.0
        # Different kinds/keys/seeds draw independently.
        assert a != faults.decide(1, "hang", "job-a")
        assert a != faults.decide(1, "kill", "job-b")
        assert a != faults.decide(2, "kill", "job-a")


class TestOnJob:
    PAYLOAD = ({"kind": "ProjectSpec"}, {"kind": "AnalysisRequest"}, 0)

    def test_never_fires_outside_a_marked_worker(self):
        """Armed plan + unmarked process: on_job must be a no-op (a
        kill_rate=1.0 draw would otherwise os._exit this test run)."""
        faults.install(faults.FaultPlan(seed=0, kill_rate=1.0, hang_rate=1.0))
        faults.on_job(self.PAYLOAD)  # surviving IS the assertion

    def test_never_fires_without_a_plan(self):
        faults.mark_worker()
        faults.on_job(self.PAYLOAD)

    def test_first_attempt_only_skips_retries(self):
        faults.mark_worker()
        faults.install(
            faults.FaultPlan(seed=0, hang_rate=1.0, hang_seconds=30.0)
        )
        retry = (self.PAYLOAD[0], self.PAYLOAD[1], 1)
        started = time.monotonic()
        faults.on_job(retry)  # attempt 1: must return immediately
        assert time.monotonic() - started < 1.0

    def test_hang_sleeps_in_marked_worker(self):
        faults.mark_worker()
        faults.install(
            faults.FaultPlan(seed=0, hang_rate=1.0, hang_seconds=0.2)
        )
        started = time.monotonic()
        faults.on_job(self.PAYLOAD)
        assert time.monotonic() - started >= 0.2


# --------------------------------------------------------------------------- #
# Store corruption
# --------------------------------------------------------------------------- #
class TestCorruptStore:
    @staticmethod
    def _seed_store(tmp_path, buckets=6):
        store = SummaryStore(str(tmp_path))
        for index in range(buckets):
            store.put(f"bucket{index}", "k", index)
        store.flush()
        return store

    def test_fraction_one_corrupts_every_bucket(self, tmp_path):
        self._seed_store(tmp_path)
        assert faults.corrupt_store(str(tmp_path), seed=1, fraction=1.0) == 6
        probe = SummaryStore(str(tmp_path))
        for index in range(6):
            assert probe.get(f"bucket{index}", "k") is None
        assert probe.corruptions == 6

    def test_deterministic_selection_from_seed(self, tmp_path):
        self._seed_store(tmp_path)
        expected = sum(
            1
            for index in range(6)
            if faults.decide(9, "corrupt", f"bucket{index}.pkl") < 0.5
        )
        assert faults.corrupt_store(str(tmp_path), seed=9, fraction=0.5) == expected

    def test_missing_directory_is_zero(self, tmp_path):
        assert faults.corrupt_store(str(tmp_path / "nope"), seed=0) == 0


# --------------------------------------------------------------------------- #
# Flaky HTTP proxy
# --------------------------------------------------------------------------- #
BODY = json.dumps({"payload": "x" * 512}).encode()


class _Handler(http.server.BaseHTTPRequestHandler):
    def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
        self.send_response(200)
        self.send_header("Content-Length", str(len(BODY)))
        self.end_headers()
        self.wfile.write(BODY)

    def log_message(self, *args):  # keep test output quiet
        pass


@pytest.fixture()
def upstream():
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


class TestFlakyProxy:
    def test_pass_verdict_forwards_response_intact(self, upstream):
        with faults.FlakyProxy(*upstream.server_address) as proxy:
            with urllib.request.urlopen(proxy.url, timeout=10) as reply:
                assert reply.read() == BODY
            assert proxy.verdicts == ["pass"]
            assert proxy.faults == 0

    def test_drop_verdict_kills_the_response(self, upstream):
        with faults.FlakyProxy(
            *upstream.server_address, drop_rate=1.0
        ) as proxy:
            with pytest.raises((urllib.error.URLError, OSError)):
                with urllib.request.urlopen(proxy.url, timeout=10) as reply:
                    reply.read()
            assert proxy.verdicts == ["drop"]
            assert proxy.faults == 1

    def test_truncate_verdict_cuts_the_response_short(self, upstream):
        with faults.FlakyProxy(
            *upstream.server_address, truncate_rate=1.0
        ) as proxy:
            received = b""
            try:
                with urllib.request.urlopen(proxy.url, timeout=10) as reply:
                    received = reply.read()
            except (urllib.error.URLError, OSError, http.client.HTTPException):
                pass  # a cut connection may also surface as a transport error
            assert len(received) < len(BODY)
            assert proxy.verdicts == ["truncate"]
            assert proxy.faults == 1

    def test_verdict_sequence_is_seed_deterministic(self, upstream):
        """The verdict log is a pure function of (seed, accept order)."""
        rates = dict(drop_rate=0.4, truncate_rate=0.3)
        expected = []
        rng = random.Random(11)
        for _ in range(8):
            draw = rng.random()
            if draw < rates["drop_rate"]:
                expected.append("drop")
            elif draw < rates["drop_rate"] + rates["truncate_rate"]:
                expected.append("truncate")
            else:
                expected.append("pass")
        with faults.FlakyProxy(
            *upstream.server_address, seed=11, **rates
        ) as proxy:
            for _ in range(8):
                try:
                    with urllib.request.urlopen(proxy.url, timeout=10) as reply:
                        reply.read()
                except (urllib.error.URLError, OSError, http.client.HTTPException):
                    pass
            for _ in range(100):
                if len(proxy.verdicts) >= 8:
                    break
                time.sleep(0.05)
            assert proxy.verdicts == expected
