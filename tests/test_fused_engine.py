"""Fused-engine equivalence: kernels, interning, dense simplex rows.

The fused execution layer (block-compiled transfer kernels, interned lattice
values, dense simplex rows) must be *bit-identical* to the reference path —
not merely close.  Three layers of evidence:

* a differential sweep: generator seeds 1-100, rotating through all six fuzz
  presets, full-report identity fused vs reference;
* unit tests for the interval/abstract-value interning invariants the fast
  paths rely on;
* the dict-tableau vs dense-row-tableau pivot sequence of the simplex.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.domains.interval import Interval
from repro.analysis.domains.memstate import AbstractState, AbstractValue
from repro.analysis.value import ENGINES, default_engine
from repro.api import Project
from repro.api.service import AnalysisRequest, AnalysisService
from repro.errors import AnalysisError, ReproError
from repro.testing import generate_case, render_case
from repro.testing.fuzz import default_presets, report_identity
from repro.wcet import simplex
from repro.wcet.analyzer import AnalysisOptions

#: The differential sweep: 100 generated programs, preset rotation covering
#: every fuzz hard spot (recursion, irreducible flow, function pointers,
#: context caps) at least 16 times each.
SWEEP_SEEDS = list(range(1, 101))
PRESETS = default_presets()


def _engine_options(preset, engine: str) -> AnalysisOptions:
    if preset.options is None:
        return AnalysisOptions(engine=engine)
    return dataclasses.replace(preset.options, engine=engine)


def _identity_under(service: AnalysisService, options: AnalysisOptions):
    """Full-report identity (or the exact failure) of one analysis."""
    try:
        result = service.analyze(AnalysisRequest(options=options))
    except ReproError as exc:
        return ("error", type(exc).__name__, str(exc))
    return {mode: report_identity(report) for mode, report in result.reports.items()}


class TestFusedVsReferenceSweep:
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_engines_agree_bit_for_bit(self, seed):
        preset = PRESETS[seed % len(PRESETS)]
        case = generate_case(seed, preset.mix)
        rendered = render_case(case)
        project = Project.from_source(
            rendered.source,
            entry=case.entry,
            annotations=rendered.annotations,
            cache="off",
            name=case.name,
        )
        service = AnalysisService(project)
        fused = _identity_under(service, _engine_options(preset, "fused"))
        reference = _identity_under(service, _engine_options(preset, "reference"))
        assert fused == reference, (
            f"seed {seed} preset {preset.name}: fused and reference engines diverged"
        )


class TestEngineSelection:
    def test_default_engine_is_fused(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert default_engine() == "fused"

    def test_env_selects_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert default_engine() == "reference"
        assert AnalysisOptions().engine == "reference"

    def test_unknown_engine_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        with pytest.raises(AnalysisError):
            default_engine()

    def test_engines_tuple_is_exhaustive(self):
        assert ENGINES == ("fused", "reference")


class TestIntervalInterning:
    def test_nullary_constructors_are_singletons(self):
        assert Interval.top() is Interval.top()
        assert Interval.bottom() is Interval.bottom()

    def test_small_constants_are_pooled(self):
        for value in (-1024, -1, 0, 1, 255, 4096):
            assert Interval.const(value) is Interval.const(value)

    def test_degenerate_range_is_the_pooled_constant(self):
        assert Interval.range(7, 7) is Interval.const(7)
        assert Interval.range(5, 3) is Interval.bottom()

    def test_out_of_pool_constants_still_compare_equal(self):
        assert Interval.const(1 << 20) == Interval(1 << 20, 1 << 20)

    def test_join_returns_operand_when_result_equals_it(self):
        a = Interval.const(1)
        wide = Interval(1, 5)
        assert a.join(a) is a
        assert wide.join(a) is wide
        assert a.join(wide) is wide

    def test_meet_returns_operand_when_result_equals_it(self):
        narrow = Interval(2, 3)
        wide = Interval(0, 10)
        assert wide.meet(narrow) is narrow
        assert narrow.meet(wide) is narrow

    def test_widen_self_identity(self):
        a = Interval(0, 8)
        assert a.widen(a) is a
        assert Interval.top().widen(Interval.top()) is Interval.top()

    def test_abstract_value_singletons(self):
        assert AbstractValue.top() is AbstractValue.top()
        assert AbstractValue.bottom() is AbstractValue.bottom()
        assert AbstractValue.float_value() is AbstractValue.float_value()
        assert AbstractValue.const(42) is AbstractValue.const(42)

    def test_abstract_value_join_identity_fast_path(self):
        value = AbstractValue.const(3)
        assert value.join(value) is value
        wide = AbstractValue(Interval(0, 9))
        assert wide.join(value) is wide

    def test_state_includes_short_circuits_on_shared_dicts(self):
        state = AbstractState()
        state.set("r1", AbstractValue.const(4))
        clone = state.copy()
        # The copy shares registers/facts/memory; includes() must answer
        # True without a per-register walk (pointer fast path).
        assert state.includes(clone)
        assert clone.includes(state)

    def test_join_all_matches_pairwise_fold(self):
        a = AbstractState()
        a.set("r1", AbstractValue.const(1))
        a.set("r2", AbstractValue.const(7))
        b = AbstractState()
        b.set("r1", AbstractValue.const(5))
        c = AbstractState()
        c.set("r1", AbstractValue(Interval(-3, 0)))
        batched = AbstractState.join_all([a, b, c])
        pairwise = a.join(b).join(c)
        # AbstractState has no __eq__; mutual inclusion is lattice equality.
        assert batched.includes(pairwise) and pairwise.includes(batched)
        assert batched.get("r1") == pairwise.get("r1")
        assert batched.get("r2") == pairwise.get("r2")

    def test_join_all_of_nothing_is_unreachable(self):
        assert not AbstractState.join_all([]).reachable
        unreachable = AbstractState.unreachable()
        assert not AbstractState.join_all([unreachable]).reachable


def _dense_heavy_lp():
    """An LP whose equality rows exceed the densification threshold.

    48 variables, three full-width equality constraints and per-variable
    upper bounds: the equality rows carry ~49 of ~99 columns, so the fused
    tableau promotes them to dense lists on the first pivot that updates
    them, while the reference tableau keeps every row sparse.
    """
    n = 48
    objective = [1.0 + (i % 5) * 0.25 for i in range(n)]
    a_ub = [{i: 1.0} for i in range(n)]
    b_ub = [3.0] * n
    a_eq = [
        {i: 1.0 for i in range(n)},
        {i: (1.0 if i % 2 == 0 else 2.0) for i in range(n)},
        {i: float(1 + (i % 3)) for i in range(n)},
    ]
    b_eq = [float(n), float(n + n // 2), float(sum(1 + (i % 3) for i in range(n)))]
    return objective, a_ub, b_ub, a_eq, b_eq


class TestDenseTableau:
    def _trace(self, monkeypatch, engine):
        """Solve the dense-heavy LP recording every (row, col) pivot."""
        trace = []
        original = simplex._pivot

        def recording(rows, rhs, basis, col_rows, row, col, *args, **kwargs):
            trace.append((row, col))
            return original(rows, rhs, basis, col_rows, row, col, *args, **kwargs)

        monkeypatch.setattr(simplex, "_pivot", recording)
        objective, a_ub, b_ub, a_eq, b_eq = _dense_heavy_lp()
        result = simplex.solve_sparse_lp(
            objective, a_ub, b_ub, a_eq, b_eq, maximise=True, engine=engine
        )
        return trace, result

    def test_pivot_sequences_identical(self, monkeypatch):
        with monkeypatch.context() as patch:
            fused_trace, fused = self._trace(patch, "fused")
        with monkeypatch.context() as patch:
            reference_trace, reference = self._trace(patch, "reference")
        assert fused_trace == reference_trace
        assert fused.status == reference.status == "optimal"
        assert fused.objective == reference.objective
        assert fused.values == reference.values
        assert fused.pivots == reference.pivots > 0

    def test_fused_engine_actually_densifies(self):
        objective, a_ub, b_ub, a_eq, b_eq = _dense_heavy_lp()
        prepared = simplex.prepare_sparse_tableau(
            len(objective), a_ub, b_ub, a_eq, b_eq, engine="fused"
        )
        assert prepared.dense_rows, "expected dense-row promotion on this LP"
        assert any(type(row) is list for row in prepared.rows)
        reference = simplex.prepare_sparse_tableau(
            len(objective), a_ub, b_ub, a_eq, b_eq, engine="reference"
        )
        assert reference.dense_rows is None
        assert all(type(row) is dict for row in reference.rows)

    def test_prepared_tableau_reuse_counts_phase1_once(self):
        objective, a_ub, b_ub, a_eq, b_eq = _dense_heavy_lp()
        prepared = simplex.prepare_sparse_tableau(
            len(objective), a_ub, b_ub, a_eq, b_eq, engine="fused"
        )
        assert prepared.pivots > 0
        maxi = simplex.optimise_prepared(prepared, objective, maximise=True)
        mini = simplex.optimise_prepared(prepared, objective, maximise=False)
        assert maxi.status == mini.status == "optimal"
        # Phase-2 counters exclude the shared phase-1 work.
        assert maxi.pivots >= 0 and mini.pivots >= 0
        single = simplex.solve_sparse_lp(
            objective, a_ub, b_ub, a_eq, b_eq, maximise=True, engine="fused"
        )
        assert single.pivots == prepared.pivots + maxi.pivots
        assert single.objective == maxi.objective
