"""The fuzz fleet: hard-spot grammar presets, the server-path fuzz driver,
the wire-level fuzzer, and the client wait/timeout fixes.

The acceptance bar (see docs/testing.md, "The fuzz fleet"):

* every preset generates programs that stay sound under the differential
  oracle, and the features default *off* so historical seeds render
  byte-identically;
* the server path reproduces the direct facade bit for bit;
* every malformed wire request yields a 4xx ``ServerError`` envelope —
  never a 500, a hang, or a raw HTML error page.
"""

import hashlib
import json

import pytest

from repro.annotations import AnnotationSet, parse_annotations
from repro.server.http import AnalysisServer
from repro.server.client import ClientError, RemoteError, ServerClient
from repro.testing import (
    DifferentialOracle,
    FeatureMix,
    OracleConfig,
    Shrinker,
    check_case,
    default_presets,
    generate_case,
    render_case,
    run_fuzz,
    run_wire_fuzz,
)
from repro.testing.corpus import annotations_to_text, case_payload, load_case
from repro.testing.fuzz import _WireRequest, _exchange
from repro.testing.generator import (
    GeneratedCase,
    GFunction,
    GlobalVar,
    SAssign,
    SFnPtrCall,
    SGotoLoop,
)
from repro.wcet.analyzer import AnalysisOptions

_FAST = OracleConfig(max_input_vectors=2)

#: SHA-256 over the rendered sources of seeds 1..20 with the default mix.
#: The hard-spot grammar features are opt-in: turning them OFF must keep
#: every historical seed byte-identical (CI smoke baselines, benchmark
#: identity checksums and FAST_SEEDS all depend on this).
_LEGACY_DIGEST = "1fd61ca1cfac9488"


def _mix_sources(mix, seeds):
    cases = [generate_case(seed, mix=mix) for seed in seeds]
    return cases, [render_case(case) for case in cases]


# --------------------------------------------------------------------------- #
# Grammar presets: the generator's new hard-spot regions
# --------------------------------------------------------------------------- #
class TestGrammarPresets:
    def test_features_default_off_keeps_legacy_seeds_identical(self):
        digest = hashlib.sha256()
        for seed in range(1, 21):
            digest.update(render_case(generate_case(seed)).source.encode())
        assert digest.hexdigest()[:16] == _LEGACY_DIGEST

    @pytest.mark.parametrize("seed", range(1, 7))
    def test_recursion_mix_is_sound(self, seed):
        mix = FeatureMix(allow_recursion=True)
        case = generate_case(seed, mix=mix)
        rendered = render_case(case)
        assert rendered.annotations.recursion_bounds, "preset must emit recursion"
        result = check_case(case, _FAST)
        assert result.ok, f"seed {seed}: {[str(v) for v in result.violations]}"

    @pytest.mark.parametrize("seed", range(1, 7))
    def test_goto_loop_mix_is_sound(self, seed):
        mix = FeatureMix(allow_goto_loops=True, p_goto_loop=0.5)
        case = generate_case(seed, mix=mix)
        result = check_case(case, _FAST)
        assert result.ok, f"seed {seed}: {[str(v) for v in result.violations]}"

    def test_goto_loop_mix_reaches_irreducible_shape(self):
        mix = FeatureMix(allow_goto_loops=True, p_goto_loop=0.5)
        _, rendered = _mix_sources(mix, range(1, 11))
        assert any("goto" in r.source for r in rendered)

    @pytest.mark.parametrize("seed", range(1, 7))
    def test_fnptr_mix_is_sound_with_calltargets(self, seed):
        mix = FeatureMix(allow_function_pointers=True, p_fnptr_call=0.5)
        case = generate_case(seed, mix=mix)
        rendered = render_case(case)
        if "()" in rendered.source and "fp" in rendered.source:
            assert rendered.annotations.control_flow_hints.indirect_call_targets
        result = check_case(case, _FAST)
        assert result.ok, f"seed {seed}: {[str(v) for v in result.violations]}"

    @pytest.mark.parametrize("seed", (1, 5, 9, 13))
    def test_combined_mix_is_sound(self, seed):
        mix = FeatureMix(
            allow_recursion=True,
            allow_goto_loops=True,
            allow_function_pointers=True,
            p_goto_loop=0.3,
            p_fnptr_call=0.3,
        )
        result = check_case(generate_case(seed, mix=mix), _FAST)
        assert result.ok, f"seed {seed}: {[str(v) for v in result.violations]}"

    def test_context_cap_options_stay_sound_and_conservative(self):
        """A tight context cap merges call contexts — bounds may widen but
        must stay sound and never tighten below the default analysis."""
        capped = OracleConfig(
            max_input_vectors=2,
            analysis_options=AnalysisOptions(max_contexts_per_function=1),
        )
        default_oracle = DifferentialOracle(_FAST)
        capped_oracle = DifferentialOracle(capped)
        for seed in range(1, 7):
            case = generate_case(seed)
            base = default_oracle.check(case)
            tight = capped_oracle.check(case)
            assert tight.ok, f"seed {seed}: {[str(v) for v in tight.violations]}"
            assert tight.wcet_cycles >= base.wcet_cycles
            assert tight.bcet_cycles <= base.bcet_cycles

    def test_recursion_reports_are_stable_across_cache_reuse(self, tmp_path):
        """Recursion-cycle members are excluded from the summary cache; a
        second run over a warm store must reproduce the cold bounds."""
        mix = FeatureMix(allow_recursion=True)
        config = OracleConfig(max_input_vectors=2, cache_dir=str(tmp_path))
        case = generate_case(3, mix=mix)
        cold = DifferentialOracle(config).check(case)
        warm = DifferentialOracle(config).check(case)
        assert cold.ok and warm.ok
        assert (cold.wcet_cycles, cold.bcet_cycles) == (
            warm.wcet_cycles,
            warm.bcet_cycles,
        )


# --------------------------------------------------------------------------- #
# Shrinker support for the new statement forms
# --------------------------------------------------------------------------- #
def _known_bad_goto_case() -> GeneratedCase:
    """A goto loop whose annotation understates the real trip count."""
    case = GeneratedCase(name="known-bad-goto", seed=0)
    case.globals_.append(GlobalVar("in0", is_input=True))
    main = GFunction(name="main", params=[])
    main.locals_ = [("v0", "1"), ("c0", "0"), ("acc", "0")]
    main.body = [
        SGotoLoop(
            uid=0, var="c0", bound=8,
            body=[SAssign("acc", "acc + v0")], annotate=2,
        ),
        SAssign("acc", "acc + 1"),
    ]
    main.return_expr = "acc"
    case.functions.append(main)
    return case


class TestShrinkerNewStatements:
    def test_known_bad_goto_loop_violates(self):
        result = check_case(_known_bad_goto_case(), _FAST)
        assert not result.ok
        assert "wcet-undercut" in result.violation_kinds()

    def test_shrinker_minimises_goto_loop_keeping_the_cycle(self):
        shrunk = Shrinker(_FAST, max_checks=200).shrink(_known_bad_goto_case())
        assert not shrunk.result.ok
        assert "wcet-undercut" in shrunk.result.violation_kinds()
        assert shrunk.line_count <= 14, render_case(shrunk.case).source
        assert "goto" in render_case(shrunk.case).source

    def test_shrinker_offers_fnptr_alternate_drop(self):
        case = GeneratedCase(name="fnptr-cand", seed=0)
        handler = GFunction(name="h0", params=[], locals_=[("t", "2")],
                            body=[SAssign("t", "t * 2")], return_expr="t")
        main = GFunction(name="main", params=[])
        main.locals_ = [("v0", "1")]
        main.body = [
            SFnPtrCall(uid=0, primary="h0", lhs="v0", alternate="h0", cond="v0 > 0")
        ]
        main.return_expr = "v0"
        case.functions.extend([handler, main])
        shrinker = Shrinker(_FAST)
        drops = [
            candidate
            for candidate in shrinker._shorten_loops(case)
            if isinstance(candidate.functions[1].body[0], SFnPtrCall)
            and candidate.functions[1].body[0].alternate is None
        ]
        assert drops, "shrinker must offer dropping the alternate target"


# --------------------------------------------------------------------------- #
# Corpus round-trip for the new annotation kinds
# --------------------------------------------------------------------------- #
class TestCorpusRoundTrip:
    def test_annotations_to_text_covers_recursion_and_calltargets(self):
        annotations = AnnotationSet()
        annotations.add_loop_bound("main", "top", 5)
        annotations.add_argument_range("f0", "r3", -4, 9)
        annotations.add_recursion_bound("rc0", 3)
        annotations.add_call_targets(0x1040, ("h0", "h1"))
        lines = annotations_to_text(annotations)
        parsed = parse_annotations("\n".join(lines))
        assert parsed.loop_bounds == annotations.loop_bounds
        assert parsed.argument_ranges == annotations.argument_ranges
        assert parsed.recursion_bounds == annotations.recursion_bounds
        assert (
            parsed.control_flow_hints.indirect_call_targets
            == annotations.control_flow_hints.indirect_call_targets
        )

    def test_generated_hard_spot_case_survives_corpus_io(self, tmp_path):
        """A fnptr+recursion case written as corpus JSON replays soundly."""
        mix = FeatureMix(
            allow_recursion=True, allow_function_pointers=True, p_fnptr_call=0.5
        )
        case = next(
            c
            for c in (generate_case(seed, mix=mix) for seed in range(1, 30))
            if render_case(c).annotations.control_flow_hints.indirect_call_targets
            and render_case(c).annotations.recursion_bounds
        )
        payload = case_payload(case, "round-trip fixture")
        path = tmp_path / f"{payload['name']}.json"
        path.write_text(json.dumps(payload))
        loaded = load_case(str(path))
        original = render_case(case).annotations
        replayed = loaded.rendered().annotations
        assert replayed.recursion_bounds == original.recursion_bounds
        assert (
            replayed.control_flow_hints.indirect_call_targets
            == original.control_flow_hints.indirect_call_targets
        )
        result = check_case(loaded, _FAST)
        assert result.ok, [str(v) for v in result.violations]


# --------------------------------------------------------------------------- #
# Client fixes: explicit zero timeout, wait backoff/deadline semantics
# --------------------------------------------------------------------------- #
class _Status:
    def __init__(self, state):
        self.state = state


class TestClientFixes:
    def test_call_passes_explicit_zero_timeout(self, monkeypatch):
        seen = {}

        class _Response:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def read(self):
                return b"{}"

        def fake_urlopen(request, timeout=None):
            seen["timeout"] = timeout
            return _Response()

        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
        client = ServerClient("http://127.0.0.1:1", timeout=30.0)
        client._call("GET", "/healthz", timeout=0.0)
        assert seen["timeout"] == 0.0, "timeout=0 must not fall back to default"
        client._call("GET", "/healthz")
        assert seen["timeout"] == 30.0

    def test_wait_raises_after_consecutive_stream_failures(self, monkeypatch):
        pauses = []
        monkeypatch.setattr("time.sleep", pauses.append)

        class _FlakyClient(ServerClient):
            def status(self, job_id):
                return _Status("running")

            def events(self, job_id, since=0):
                raise ClientError("stream torn")

        client = _FlakyClient("http://127.0.0.1:1")
        with pytest.raises(ClientError, match="stream torn"):
            client.wait("job-1")
        # MAX_WAIT_FAILURES-1 retries sleep with doubling capped backoff,
        # jittered into [0.5x, 1.0x) to decorrelate synchronized clients.
        assert len(pauses) == ServerClient.MAX_WAIT_FAILURES - 1
        assert ServerClient.WAIT_BACKOFF_MIN / 2 <= pauses[0] < ServerClient.WAIT_BACKOFF_MIN
        assert all(b < ServerClient.WAIT_BACKOFF_MAX for b in pauses)
        # The pre-jitter schedule doubles: the second pause draws from a
        # window strictly above the first window's midpoint ceiling.
        assert ServerClient.WAIT_BACKOFF_MIN <= pauses[1] < ServerClient.WAIT_BACKOFF_MIN * 2

    def test_wait_checks_deadline_before_first_poll(self):
        calls = []

        class _CountingClient(ServerClient):
            def status(self, job_id):
                calls.append(job_id)
                return _Status("running")

        client = _CountingClient("http://127.0.0.1:1")
        with pytest.raises(ClientError, match="timed out"):
            client.wait("job-1", timeout=0.0)
        assert calls == [], "an expired deadline must not trigger a poll"

    def test_wait_returns_terminal_status_without_streaming(self):
        class _DoneClient(ServerClient):
            def status(self, job_id):
                return _Status("done")

            def events(self, job_id, since=0):  # pragma: no cover - must not run
                raise AssertionError("no stream needed for a terminal job")

        assert _DoneClient("http://127.0.0.1:1").wait("job-1").state == "done"


# --------------------------------------------------------------------------- #
# Wire fuzzing: every malformed request yields a 4xx envelope
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="class")
def live_server():
    with AnalysisServer(port=0, jobs=1) as server:
        yield server


class TestWireFuzz:
    def test_wire_fuzzer_reports_zero_mishandled_requests(self, live_server):
        summary = run_wire_fuzz(live_server.url, iterations=150, seed=3)
        assert summary.ok, [str(v) for v in summary.violations]
        assert len(summary.by_strategy) >= 10, "rotation must cover strategies"

    @pytest.mark.parametrize(
        "request_",
        [
            _WireRequest(method="GET", path="/v1/jobs/x/events?since=abc"),
            _WireRequest(body=b'{"schema": 1, "kind": "\xff\xfe"}'),
            _WireRequest(body=b""),
            _WireRequest(body=b"[]"),
            _WireRequest(method="DELETE", path="/v1/jobs", body=b"{}"),
            _WireRequest(
                body=b"",
                raw_headers=[("Content-Type", "application/json"),
                             ("Content-Length", "banana")],
            ),
            _WireRequest(
                body=b"",
                raw_headers=[("Content-Type", "application/json"),
                             ("Content-Length", "-7")],
            ),
        ],
        ids=[
            "bad-since", "invalid-utf8", "empty-body", "non-object",
            "bad-method", "content-length-nan", "content-length-negative",
        ],
    )
    def test_known_regressions_return_4xx_envelopes(self, live_server, request_):
        from repro.api import serialize
        from repro.server.wire import ServerError

        status, body = _exchange(
            live_server.host, live_server.port, request_, timeout=15.0
        )
        assert 400 <= status < 500, (status, body)
        error = serialize.from_json(json.loads(body), ServerError)
        assert error.error and error.message

    def test_type_garbage_project_spec_is_rejected_with_400(self, live_server):
        from repro.api import serialize
        from repro.api.service import AnalysisRequest
        from repro.server.wire import ProjectSpec, ServerSubmit

        payload = serialize.to_json(
            ServerSubmit(
                project=ProjectSpec(source="int main(void) { return 0; }"),
                request=AnalysisRequest(),
                lane="batch",
            )
        )
        payload["project"]["workload"] = 123
        payload["project"]["source"] = None
        with pytest.raises(RemoteError) as info:
            ServerClient(live_server.url)._call("POST", "/v1/jobs", payload)
        assert info.value.status == 400


# --------------------------------------------------------------------------- #
# The fuzz driver end to end (small programs budget; CI runs the big sweep)
# --------------------------------------------------------------------------- #
class TestFuzzDriver:
    def test_fuzz_smoke_is_clean_and_covers_presets(self, tmp_path):
        summary = run_fuzz(
            programs=6,
            jobs=1,
            base_seed=1,
            inputs=2,
            wire_iterations=40,
            corpus_dir=str(tmp_path),
        )
        assert summary.ok, summary.to_json()
        assert summary.total_runs > 0
        assert sorted(summary.preset_counts) == sorted(
            preset.name for preset in default_presets()
        )
        assert summary.wire is not None and summary.wire.ok
        assert not list(tmp_path.iterdir()), "clean run must file no seeds"
        payload = summary.to_json()
        assert payload["kind"] == "FuzzSummary" and payload["ok"] is True
