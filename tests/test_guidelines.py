"""Tests for the MISRA-C predictability checker and the assessment glue."""

from __future__ import annotations

import pytest

from repro.annotations import AnnotationSet
from repro.guidelines import (
    ChallengeTier,
    GuidelineChecker,
    all_rules,
    assess_predictability,
)
from repro.workloads import loops_suite, pointer_suite, functions_suite


class TestIndividualRules:
    def check(self, source: str):
        return GuidelineChecker().check_source(source)

    def test_rule_13_4_float_loop(self):
        report = self.check(loops_suite.FLOAT_LOOP_SOURCE)
        assert report.count("13.4") == 1
        assert report.findings_for("13.4")[0].challenge is ChallengeTier.TIER_ONE

    def test_rule_13_4_clean_loop(self):
        assert self.check(loops_suite.INT_LOOP_SOURCE).count("13.4") == 0

    def test_rule_13_6_modified_counter(self):
        report = self.check(loops_suite.MODIFIED_COUNTER_SOURCE)
        assert report.count("13.6") == 1
        assert "i" in report.findings_for("13.6")[0].message

    def test_rule_13_6_clean(self):
        assert self.check(loops_suite.CLEAN_COUNTER_SOURCE).count("13.6") == 0

    def test_rule_14_1_dead_code_after_return(self):
        source = "int main(void) { return 1; int dead = 2; return dead; }"
        assert self.check(source).count("14.1") >= 1

    def test_rule_14_1_constant_false_condition(self):
        source = "int main(void) { if (0) { return 9; } return 1; }"
        assert self.check(source).count("14.1") >= 1

    def test_rule_14_4_any_goto_is_reported(self):
        report = self.check(loops_suite.GOTO_IRREDUCIBLE_SOURCE)
        assert report.count("14.4") >= 1
        assert all(f.challenge is ChallengeTier.TIER_ONE for f in report.findings_for("14.4"))

    def test_rule_14_4_goto_into_structured_loop_flagged_as_irreducible(self):
        source = (
            "int total;\n"
            "int main(void) {\n"
            "    int i = 0;\n"
            "    goto inside;\n"
            "    while (i < 10) {\n"
            "inside:\n"
            "        total += i;\n"
            "        i++;\n"
            "    }\n"
            "    return total;\n"
            "}\n"
        )
        report = self.check(source)
        assert any("irreducible" in f.message for f in report.findings_for("14.4"))

    def test_rule_14_5_continue_is_style_only(self):
        report = self.check(loops_suite.CONTINUE_SOURCE)
        findings = report.findings_for("14.5")
        assert findings and all(f.challenge is ChallengeTier.NONE for f in findings)

    def test_rule_16_1_variadic(self):
        assert self.check(functions_suite.VARIADIC_SOURCE).count("16.1") == 1
        assert self.check(functions_suite.FIXED_ARITY_SOURCE).count("16.1") == 0

    def test_rule_16_2_direct_recursion(self):
        assert self.check(functions_suite.RECURSIVE_SOURCE).count("16.2") == 1

    def test_rule_16_2_mutual_recursion(self):
        source = (
            "int odd(int n);\n"
            "int even(int n) { if (n == 0) return 1; return odd(n - 1); }\n"
            "int odd(int n) { if (n == 0) return 0; return even(n - 1); }\n"
            "int main(void) { return even(4); }\n"
        )
        report = self.check(source)
        assert {f.function for f in report.findings_for("16.2")} == {"even", "odd"}

    def test_rule_20_4_malloc(self):
        assert self.check(pointer_suite.HEAP_BUFFER_SOURCE).count("20.4") == 1
        assert self.check(pointer_suite.STATIC_BUFFER_SOURCE).count("20.4") == 0

    def test_rule_20_7_setjmp_longjmp(self):
        assert self.check(pointer_suite.LONGJMP_SOURCE).count("20.7") == 2

    def test_all_nine_rules_registered(self):
        assert [rule.info.rule_id for rule in all_rules()] == [
            "13.4", "13.6", "14.1", "14.4", "14.5", "16.1", "16.2", "20.4", "20.7",
        ]

    def test_clean_program_has_no_findings(self):
        report = self.check(loops_suite.INT_LOOP_SOURCE)
        assert report.is_clean


class TestReportsAndAssessment:
    def test_report_tier_partition(self):
        report = GuidelineChecker().check_source(loops_suite.GOTO_IRREDUCIBLE_SOURCE)
        assert len(report.tier_one_findings()) + len(report.tier_two_findings()) <= len(
            report.findings
        )

    def test_report_text_rendering(self):
        report = GuidelineChecker().check_source(loops_suite.FLOAT_LOOP_SOURCE)
        text = report.format_text()
        assert "MISRA" in text and "13.4" in text

    def test_summary_counts(self):
        report = GuidelineChecker().check_source(loops_suite.MODIFIED_COUNTER_SOURCE)
        assert report.summary()["13.6"] == 1

    def test_selected_rules_only(self):
        checker = GuidelineChecker(rules=[all_rules()[0]])
        report = checker.check_source(loops_suite.MODIFIED_COUNTER_SOURCE)
        assert report.rules_checked == ["13.4"]
        assert report.count("13.6") == 0

    def test_assessment_of_clean_source_is_analyzable(self):
        assessment = assess_predictability(loops_suite.INT_LOOP_SOURCE)
        assert assessment.analyzable_without_annotations
        assert assessment.wcet_report is not None
        assert assessment.predictability_score > 0.8

    def test_assessment_of_violating_source_needs_annotations(self):
        assessment = assess_predictability(
            loops_suite.FLOAT_LOOP_SOURCE,
            annotations=loops_suite.manual_annotations("13.4"),
        )
        assert not assessment.analyzable_without_annotations
        assert assessment.wcet_report is not None  # rescued by the annotations
        assert assessment.predictability_score < 0.6

    def test_assessment_text_render(self):
        assessment = assess_predictability(loops_suite.INT_LOOP_SOURCE)
        assert "predictability score" in assessment.format_text()
