"""Tests for the memory map, caches (concrete + abstract), pipeline timing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ValueAnalysis
from repro.analysis.domains.interval import Interval
from repro.cfg import find_loops, reconstruct_cfg
from repro.errors import TimingAnalysisError
from repro.hardware import (
    CacheClassification,
    CacheConfig,
    DataCacheAnalysis,
    InstructionCacheAnalysis,
    LRUCacheSimulator,
    MemoryMap,
    MemoryModule,
    MustMayCacheState,
    PipelineModel,
    TraceTimer,
    hcs12x_like,
    leon2_like,
    mpc5554_like,
    simple_scalar,
)
from repro.hardware.memory import default_memory_map
from repro.ir import Interpreter, parse_assembly
from repro.ir.program import CODE_BASE, DATA_BASE, DEVICE_BASE


class TestMemoryMap:
    def test_default_map_has_expected_regions(self):
        names = {module.name for module in default_memory_map()}
        assert {"flash", "ram", "stack", "heap", "device"} <= names

    def test_module_lookup_by_address(self):
        memory_map = default_memory_map()
        assert memory_map.module_for(CODE_BASE).name == "flash"
        assert memory_map.module_for(DATA_BASE).name == "ram"
        assert memory_map.module_for(DEVICE_BASE).name == "device"

    def test_unknown_interval_hits_every_module(self):
        memory_map = default_memory_map()
        assert len(memory_map.modules_for_interval(Interval.top())) == len(
            memory_map.modules
        )

    def test_worst_case_latency_of_unknown_access_is_slowest_module(self):
        memory_map = default_memory_map(device_read=44)
        best, worst, cached = memory_map.latency_bounds(Interval.top(), is_load=True)
        assert worst == 44

    def test_precise_ram_access_is_cheap(self):
        memory_map = default_memory_map(ram_read=2, device_read=44)
        best, worst, cached = memory_map.latency_bounds(
            Interval.const(DATA_BASE + 16), is_load=True
        )
        assert worst == 2 and cached

    def test_device_region_is_uncached(self):
        memory_map = default_memory_map()
        _, _, cached = memory_map.latency_bounds(Interval.const(DEVICE_BASE), True)
        assert not cached

    def test_overlapping_modules_rejected(self):
        with pytest.raises(TimingAnalysisError):
            MemoryMap(
                [
                    MemoryModule("a", 0, 100, 1, 1),
                    MemoryModule("b", 50, 100, 1, 1),
                ]
            )

    def test_module_named_lookup(self):
        memory_map = default_memory_map()
        assert memory_map.module_named("ram").name == "ram"
        with pytest.raises(TimingAnalysisError):
            memory_map.module_named("missing")


class TestConcreteCache:
    def test_repeated_access_hits(self):
        cache = LRUCacheSimulator(CacheConfig("d", 4, 2, 16))
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction_order(self):
        config = CacheConfig("d", 1, 2, 16)   # one set, two ways
        cache = LRUCacheSimulator(config)
        cache.access(0x000)
        cache.access(0x010)
        cache.access(0x020)    # evicts 0x000 (least recently used)
        assert not cache.contains(0x000)
        assert cache.contains(0x010) and cache.contains(0x020)

    def test_access_touching_two_lines(self):
        config = CacheConfig("d", 4, 2, 16)
        cache = LRUCacheSimulator(config)
        assert config.lines_touched(0x1C, 8) == [1, 2]

    def test_bad_geometry_rejected(self):
        with pytest.raises(TimingAnalysisError):
            CacheConfig("bad", 3, 2, 16)

    def test_age_query(self):
        cache = LRUCacheSimulator(CacheConfig("d", 1, 4, 16))
        cache.access(0x00)
        cache.access(0x10)
        assert cache.age_of(0x10) == 0 and cache.age_of(0x00) == 1
        assert cache.age_of(0x40) is None

    @given(words=st.lists(st.integers(0, 2**10), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_must_cache_is_sound_wrt_concrete_cache(self, words):
        """A line in the abstract must cache is always in the concrete cache.

        Word-aligned accesses (as produced by the IR) never straddle a cache
        line, so one abstract line access corresponds to one concrete access.
        """
        config = CacheConfig("d", 4, 2, 16)
        concrete = LRUCacheSimulator(config)
        abstract = MustMayCacheState(config)
        for word in words:
            address = word * 4
            line = config.line_of(address)
            if line in abstract.must:
                assert concrete.contains(address)
            concrete.access(address, 4)
            abstract.access_line(line)

    def test_must_may_classification(self):
        config = CacheConfig("d", 2, 2, 16)
        state = MustMayCacheState(config)
        assert state.classify(5) is CacheClassification.ALWAYS_MISS
        state.access_line(5)
        assert state.classify(5) is CacheClassification.ALWAYS_HIT

    def test_join_drops_unshared_must_lines(self):
        config = CacheConfig("d", 2, 2, 16)
        a = MustMayCacheState(config)
        b = MustMayCacheState(config)
        a.access_line(1)
        b.access_line(2)
        joined = a.join(b)
        assert not joined.must
        assert set(joined.may) == {1, 2}

    def test_unknown_access_clears_must_cache(self):
        config = CacheConfig("d", 2, 2, 16)
        state = MustMayCacheState(config)
        state.access_line(3)
        state.access_imprecise(None)
        assert not state.must


ICACHE_LOOP = """
.data buf 64
.func main
    mov r4, 0
    la r6, buf
loop:
    load r7, [r6 + 4]
    add r4, r4, 1
    slt r5, r4, 10
    bt r5, loop
    halt
"""


class TestCacheAnalyses:
    def _prepare(self):
        program = parse_assembly(ICACHE_LOOP)
        cfg, _ = reconstruct_cfg(program, "main")
        loops = find_loops(cfg)
        values = ValueAnalysis(program, cfg, loops).run()
        return program, cfg, loops, values

    def test_instruction_cache_classifies_loop_body_as_hits(self):
        program, cfg, loops, values = self._prepare()
        processor = leon2_like()
        result = InstructionCacheAnalysis(cfg, processor.icache, loops).run()
        summary = result.summary()
        assert summary["AH"] > 0
        assert sum(summary.values()) == program.function("main").size // 4

    def test_data_cache_precise_access_recorded(self):
        program, cfg, loops, values = self._prepare()
        processor = leon2_like()
        result = DataCacheAnalysis(
            cfg, processor.dcache, values.accesses, processor.memory_map, loops
        ).run()
        assert sum(result.summary().values()) == 1

    def test_instruction_cache_classification_sound_vs_trace(self):
        """No instruction classified always-hit may miss in the concrete run."""
        program, cfg, loops, values = self._prepare()
        processor = leon2_like()
        analysis = InstructionCacheAnalysis(cfg, processor.icache, loops).run()
        concrete = LRUCacheSimulator(processor.icache)
        result = Interpreter(program).run()
        for address in result.trace.instruction_addresses:
            hit = concrete.access(address, 4)
            if analysis.classification_for(address) is CacheClassification.ALWAYS_HIT:
                assert hit


class TestPipeline:
    def test_block_bounds_are_ordered(self, counter_loop_program, cached_processor):
        cfg, _ = reconstruct_cfg(counter_loop_program, "main")
        model = PipelineModel(cached_processor)
        for block in cfg.blocks.values():
            bounds = model.block_time_bounds(block)
            assert 0 < bounds.bcet_cycles <= bounds.wcet_cycles

    def test_unknown_access_charged_with_slowest_module(self, cached_processor):
        program = parse_assembly(".func main params=1\n    load r4, [r3 + 0]\n    halt\n")
        cfg, _ = reconstruct_cfg(program, "main")
        values = ValueAnalysis(program, cfg).run()
        model = PipelineModel(cached_processor)
        block = cfg.block(cfg.entry_block)
        with_info = model.block_time_bounds(block, accesses=values.accesses)
        slowest = cached_processor.memory_map.slowest_module().read_latency
        assert with_info.memory_cycles >= slowest

    def test_trace_timer_counts_cycles(self, counter_loop_program, scalar_processor):
        result = Interpreter(counter_loop_program).run()
        timing = TraceTimer(scalar_processor, counter_loop_program).time(result.trace)
        assert timing.cycles > timing.instructions  # memory + branches cost extra

    def test_trace_timer_with_caches_reports_stats(self, counter_loop_program, cached_processor):
        result = Interpreter(counter_loop_program).run()
        timing = TraceTimer(cached_processor, counter_loop_program).time(result.trace)
        assert timing.icache_stats is not None and timing.icache_stats.accesses > 0

    def test_processor_presets_are_distinct(self):
        names = {p().name for p in (simple_scalar, leon2_like, mpc5554_like, hcs12x_like)}
        assert len(names) == 4

    def test_preset_cache_configuration(self):
        assert leon2_like().dcache is not None
        assert mpc5554_like().dcache is None
        assert hcs12x_like().icache is None

    def test_without_caches_helper(self):
        processor = leon2_like().without_caches()
        assert processor.icache is None and processor.dcache is None
