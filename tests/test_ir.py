"""Tests for the IR: instructions, programs, builder, assembler, interpreter."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AssemblyError, ExecutionError, IRError
from repro.ir import (
    Imm,
    Instruction,
    Interpreter,
    Label,
    Opcode,
    ProgramBuilder,
    Reg,
    Sym,
    parse_assembly,
)
from repro.ir.instructions import (
    INSTRUCTION_SIZE,
    OpClass,
    canonical_register,
    validate_instruction,
)
from repro.ir.interpreter import to_signed, to_unsigned, wrap32
from repro.ir.program import CODE_BASE, DATA_BASE, DataObject, Function, Program


# --------------------------------------------------------------------------- #
# Registers and instructions
# --------------------------------------------------------------------------- #
class TestRegisters:
    def test_canonical_register_plain(self):
        assert canonical_register("r5") == "r5"

    def test_canonical_register_aliases(self):
        assert canonical_register("sp") == "r29"
        assert canonical_register("fp") == "r30"
        assert canonical_register("lr") == "r31"

    def test_canonical_register_case_insensitive(self):
        assert canonical_register("R7") == "r7"

    def test_register_out_of_range_rejected(self):
        with pytest.raises(IRError):
            canonical_register("r32")

    def test_non_register_rejected(self):
        with pytest.raises(IRError):
            canonical_register("x1")


class TestInstruction:
    def test_branch_target_of_conditional(self):
        instr = Instruction(Opcode.BT, operands=(Reg("r1"), Label("loop")))
        assert instr.branch_target() == "loop"
        assert instr.is_conditional_branch

    def test_call_target(self):
        instr = Instruction(Opcode.CALL, operands=(Sym("helper"),))
        assert instr.call_target() == "helper"
        assert instr.is_call and not instr.is_indirect

    def test_indirect_call_has_no_static_target(self):
        instr = Instruction(Opcode.ICALL, operands=(Reg("r3"),))
        assert instr.call_target() is None
        assert instr.is_indirect

    def test_defined_and_used_registers(self):
        instr = Instruction(Opcode.ADD, dest=Reg("r1"), operands=(Reg("r2"), Imm(3)))
        assert instr.defined_register() == "r1"
        assert instr.used_registers() == ("r2",)

    def test_predicate_register_is_used(self):
        instr = Instruction(
            Opcode.ADD, dest=Reg("r1"), operands=(Reg("r2"), Imm(3)), pred=Reg("r9")
        )
        assert "r9" in instr.used_registers()
        assert instr.is_predicated

    def test_op_class_of_division(self):
        instr = Instruction(Opcode.DIVU, dest=Reg("r1"), operands=(Reg("r2"), Reg("r3")))
        assert instr.op_class is OpClass.DIV

    def test_terminators(self):
        assert Instruction(Opcode.RET).is_terminator
        assert Instruction(Opcode.HALT).is_terminator
        assert not Instruction(Opcode.NOP).is_terminator

    def test_validate_rejects_branch_without_label(self):
        with pytest.raises(IRError):
            validate_instruction(Instruction(Opcode.BR))

    def test_validate_rejects_store_without_base(self):
        with pytest.raises(IRError):
            validate_instruction(Instruction(Opcode.STORE, operands=(Reg("r1"),)))

    def test_validate_accepts_well_formed_load(self):
        validate_instruction(
            Instruction(Opcode.LOAD, dest=Reg("r1"), operands=(Reg("r2"),), offset=4)
        )


# --------------------------------------------------------------------------- #
# Program and layout
# --------------------------------------------------------------------------- #
class TestProgramLayout:
    def test_functions_are_laid_out_contiguously(self, counter_loop_program):
        program = counter_loop_program
        main = program.function("main")
        scale = program.function("scale")
        assert main.entry_address == CODE_BASE
        assert scale.entry_address == main.entry_address + main.size

    def test_data_objects_are_in_the_data_segment(self, counter_loop_program):
        buf = counter_loop_program.data("buf")
        assert buf.address >= DATA_BASE
        assert buf.size == 64

    def test_symbol_address_lookup(self, counter_loop_program):
        program = counter_loop_program
        assert program.symbol_address("main") == program.function("main").entry_address
        assert program.symbol_address("buf") == program.data("buf").address

    def test_instruction_at_address(self, counter_loop_program):
        program = counter_loop_program
        main = program.function("main")
        assert program.instruction_at(main.entry_address).opcode is Opcode.MOV

    def test_unknown_symbol_raises(self, counter_loop_program):
        with pytest.raises(IRError):
            counter_loop_program.symbol_address("missing")

    def test_duplicate_function_rejected(self):
        program = Program()
        program.add_function(Function("f", [Instruction(Opcode.RET)]))
        with pytest.raises(IRError):
            program.add_function(Function("f", [Instruction(Opcode.RET)]))

    def test_entry_must_exist(self):
        program = Program(entry="main")
        program.add_function(Function("other", [Instruction(Opcode.RET)]))
        with pytest.raises(IRError):
            program.validate()

    def test_function_must_end_in_terminator(self):
        function = Function("f", [Instruction(Opcode.NOP)])
        with pytest.raises(IRError):
            function.validate()

    def test_data_object_size_is_word_aligned(self):
        assert DataObject("x", 5).size == 8

    def test_listing_contains_all_functions(self, counter_loop_program):
        listing = counter_loop_program.listing()
        assert ".func main" in listing and ".func scale" in listing


# --------------------------------------------------------------------------- #
# Builder
# --------------------------------------------------------------------------- #
class TestBuilder:
    def test_builder_resolves_labels(self):
        builder = ProgramBuilder()
        fb = builder.function("main")
        fb.mov("r3", 1)
        fb.label("end")
        fb.halt()
        program = builder.build()
        assert program.function("main").labels() == {"end": 1}

    def test_builder_rejects_undefined_branch_target(self):
        builder = ProgramBuilder()
        fb = builder.function("main")
        fb.br("nowhere")
        fb.halt()
        with pytest.raises(IRError):
            builder.build()

    def test_builder_rejects_call_to_undefined_function(self):
        builder = ProgramBuilder()
        fb = builder.function("main")
        fb.call("ghost")
        fb.halt()
        with pytest.raises(IRError):
            builder.build()

    def test_pending_label_attaches_to_next_instruction(self):
        builder = ProgramBuilder()
        fb = builder.function("main")
        fb.mov("r3", 0)
        fb.label("tail")
        fb.halt()
        program = builder.build()
        assert program.function("main").instructions[-1].label == "tail"

    def test_double_label_inserts_nop_carrier(self):
        builder = ProgramBuilder()
        fb = builder.function("main")
        fb.label("first")
        fb.label("second")
        fb.halt()
        program = builder.build()
        labels = program.function("main").labels()
        assert set(labels) == {"first", "second"}
        assert program.function("main").instructions[0].opcode is Opcode.NOP

    def test_predicated_emission(self):
        builder = ProgramBuilder()
        fb = builder.function("main")
        fb.add("r3", "r3", 1, pred="r9")
        fb.halt()
        program = builder.build()
        assert program.function("main").instructions[0].pred == Reg("r9")


# --------------------------------------------------------------------------- #
# Assembler
# --------------------------------------------------------------------------- #
class TestAssembler:
    def test_round_trip_simple_program(self, counter_loop_program):
        assert counter_loop_program.instruction_count() > 0

    def test_memory_operand_offsets(self):
        program = parse_assembly(
            ".func main\n    la r4, x\n    load r3, [r4 + 12]\n    halt\n.data x 16\n"
        )
        load = program.function("main").instructions[1]
        assert load.offset == 12

    def test_unknown_opcode_reports_line(self):
        with pytest.raises(AssemblyError) as excinfo:
            parse_assembly(".func main\n    frobnicate r1\n    halt\n")
        assert "line 2" in str(excinfo.value)

    def test_instruction_outside_function_rejected(self):
        with pytest.raises(AssemblyError):
            parse_assembly("mov r1, 2\n")

    def test_data_attributes(self):
        program = parse_assembly(
            ".data regs 32 region=device readonly init=1,2\n.func main\n    halt\n"
        )
        obj = program.data("regs")
        assert obj.region == "device" and obj.readonly and obj.initial == (1, 2)

    def test_predicate_suffix(self):
        program = parse_assembly(".func main\n    add r3, r3, 1 ?r9\n    halt\n")
        assert program.function("main").instructions[0].pred == Reg("r9")

    def test_comments_are_ignored(self):
        program = parse_assembly(
            "# top comment\n.func main\n    mov r3, 1  ; trailing\n    halt\n"
        )
        assert len(program.function("main")) == 2


# --------------------------------------------------------------------------- #
# Interpreter
# --------------------------------------------------------------------------- #
class TestInterpreter:
    def test_counter_loop_result(self, counter_loop_program):
        result = Interpreter(counter_loop_program).run()
        # sum(1..8) = 36, scaled by 3 -> 108
        assert result.return_value == 108
        assert result.halted

    def test_trace_records_loop_iterations(self, counter_loop_program):
        result = Interpreter(counter_loop_program).run()
        main = counter_loop_program.function("main")
        loop_head = main.label_addresses()["loop"]
        assert result.trace.block_counts[loop_head] == 8

    def test_call_counts(self, counter_loop_program):
        result = Interpreter(counter_loop_program).run()
        assert result.trace.call_counts["scale"] == 1

    def test_arguments_are_passed_in_registers(self):
        program = parse_assembly(".func main params=2\n    add r3, r3, r4\n    halt\n")
        result = Interpreter(program).run(args=[30, 12])
        assert result.return_value == 42

    def test_initial_data_override(self, counter_loop_program):
        result = Interpreter(counter_loop_program).run(
            initial_data={"buf": [10] * 8}
        )
        assert result.return_value == 10 * 8 * 3

    def test_division_by_zero_traps(self):
        program = parse_assembly(".func main\n    mov r4, 0\n    divs r3, r3, r4\n    halt\n")
        with pytest.raises(ExecutionError):
            Interpreter(program).run()

    def test_step_limit_detects_divergence(self):
        program = parse_assembly(".func main\nspin:\n    br spin\n    halt\n")
        with pytest.raises(ExecutionError):
            Interpreter(program, max_steps=1000).run()

    def test_readonly_data_cannot_be_written(self):
        program = parse_assembly(
            ".data tbl 16 readonly\n.func main\n    la r4, tbl\n    store r3, [r4 + 0]\n    halt\n"
        )
        with pytest.raises(ExecutionError):
            Interpreter(program).run()

    def test_predicated_instruction_skipped_when_false(self):
        program = parse_assembly(
            ".func main\n    mov r3, 1\n    mov r9, 0\n    add r3, r3, 10 ?r9\n    halt\n"
        )
        assert Interpreter(program).run().return_value == 1

    def test_predicated_instruction_executes_when_true(self):
        program = parse_assembly(
            ".func main\n    mov r3, 1\n    mov r9, 1\n    add r3, r3, 10 ?r9\n    halt\n"
        )
        assert Interpreter(program).run().return_value == 11

    def test_indirect_call_through_register(self):
        program = parse_assembly(
            ".func main\n    la r11, helper\n    icall r11\n    halt\n"
            ".func helper\n    mov r3, 77\n    ret\n"
        )
        assert Interpreter(program).run().return_value == 77

    def test_unsigned_comparison(self):
        program = parse_assembly(
            ".func main\n    mov r4, -1\n    mov r5, 1\n    sltu r3, r5, r4\n    halt\n"
        )
        # 1 <u 0xffffffff
        assert Interpreter(program).run().return_value == 1

    def test_float_roundtrip(self):
        program = parse_assembly(
            ".func main\n    mov r4, 7\n    itof r5, r4\n    fmul r5, r5, 2.5\n    ftoi r3, r5\n    halt\n"
        )
        assert Interpreter(program).run().return_value == 17

    @given(a=st.integers(-(2**31), 2**31 - 1), b=st.integers(-(2**31), 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_add_wraps_like_hardware(self, a, b):
        program = parse_assembly(".func main params=2\n    add r3, r3, r4\n    halt\n")
        result = Interpreter(program).run(args=[a, b])
        assert result.return_value == wrap32(a + b)

    @given(value=st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_signed_unsigned_conversions_roundtrip(self, value):
        assert to_unsigned(to_signed(value)) == value
