"""Coverage for :mod:`repro.analysis.liveness` and
:mod:`repro.analysis.reachability` — hand-written edge cases plus structural
invariants checked on CFGs of *generated* programs (the differential
harness's generator doubles as a CFG fuzzer here).
"""

from __future__ import annotations

import pytest

from repro.analysis.liveness import compute_liveness
from repro.analysis.reachability import find_unreachable_code
from repro.analysis.value import ValueAnalysis
from repro.cfg.loops import find_loops
from repro.cfg.reconstruct import reconstruct_program
from repro.ir import Interpreter
from repro.ir.asmparser import parse_assembly
from repro.minic import compile_source
from repro.testing import generate_case, render_case

#: Seeds whose generated CFGs the invariants are checked on.
CFG_SEEDS = [2, 5, 13, 29, 41]


def _generated_cfgs(seed):
    case = generate_case(seed)
    rendered = render_case(case)
    program = compile_source(rendered.source, entry=case.entry)
    cfgs, issues = reconstruct_program(
        program, hints=rendered.annotations.control_flow_hints, strict=False
    )
    assert not issues, f"seed {seed}: generated programs decode without hints"
    return program, cfgs


def _use_def(block):
    uses, defs = set(), set()
    for instr in block.instructions:
        for register in instr.used_registers():
            if register not in defs:
                uses.add(register)
        defined = instr.defined_register()
        if defined is not None:
            defs.add(defined)
    return uses, defs


class TestLivenessInvariants:
    @pytest.mark.parametrize("seed", CFG_SEEDS)
    def test_dataflow_equations_hold_on_generated_cfgs(self, seed):
        """live_in = use ∪ (live_out − def); live_out = ∪ live_in(succ)."""
        _, cfgs = _generated_cfgs(seed)
        for name, cfg in cfgs.items():
            result = compute_liveness(cfg)
            for block_id in cfg.node_ids():
                expected_out = set()
                for successor in cfg.successors(block_id):
                    expected_out |= set(result.live_in.get(successor, frozenset()))
                assert result.live_out[block_id] == frozenset(expected_out), (
                    f"{name}:{block_id:#x}"
                )
                uses, defs = _use_def(cfg.block(block_id))
                expected_in = uses | (set(result.live_out[block_id]) - defs)
                assert result.live_in[block_id] == frozenset(expected_in), (
                    f"{name}:{block_id:#x}"
                )

    @pytest.mark.parametrize("seed", CFG_SEEDS)
    def test_dead_stores_define_registers_and_are_not_loads_or_calls(self, seed):
        _, cfgs = _generated_cfgs(seed)
        for cfg in cfgs.values():
            result = compute_liveness(cfg)
            for instr in result.dead_stores:
                assert instr.defined_register() is not None
                assert not instr.is_call
                assert not instr.is_load


class TestLivenessHandWritten:
    def test_overwritten_register_is_a_dead_store(self):
        program = parse_assembly(
            """
            .func main
                mov r3, 5
                mov r3, 7
                add r4, r3, 1
                halt
            """
        )
        cfgs, _ = reconstruct_program(program)
        result = compute_liveness(cfgs["main"])
        dead = [
            (i.opcode.value, getattr(i.operands[0], "value", None))
            for i in result.dead_stores
        ]
        assert ("mov", 5) in dead, "the overwritten value is a dead store"
        assert ("mov", 7) not in dead, "the value consumed by the add is live"

    def test_value_live_across_a_diamond(self):
        program = parse_assembly(
            """
            .func main
                mov r3, 1
                mov r4, 0
                seq r5, r3, 1
                bt r5, take
                add r4, r4, 1
                br join
            take:
                add r4, r4, 2
            join:
                mov r3, r4
                halt
            """
        )
        cfgs, _ = reconstruct_program(program)
        cfg = cfgs["main"]
        result = compute_liveness(cfg)
        join_block = cfg.block_containing(
            next(i.address for i in program.functions["main"].instructions if i.label == "join")
        )
        # r4 flows into the join from both arms.
        for pred in cfg.predecessors(join_block.id):
            assert "r4" in result.live_out.get(pred, frozenset())
        assert result.is_live_at_entry(join_block.id, "r4")

    def test_loop_counter_is_live_around_the_back_edge(self, counter_loop_program):
        cfgs, _ = reconstruct_program(counter_loop_program)
        cfg = cfgs["main"]
        loops = find_loops(cfg)
        assert loops.loops, "the fixture program has a loop"
        result = compute_liveness(cfg)
        header = loops.loops[0].header
        assert result.is_live_at_entry(header, "r4"), "the counter register"


class TestReachabilityHandWritten:
    def test_code_after_the_final_branch_is_structurally_unreachable(self):
        program = parse_assembly(
            """
            .func main
                mov r3, 1
                br done
                add r3, r3, 1
                add r3, r3, 2
            done:
                halt
            """
        )
        cfgs, _ = reconstruct_program(program)
        result = find_unreachable_code(cfgs["main"])
        assert result.has_unreachable_code
        assert result.structurally_unreachable
        assert result.dead_instruction_count >= 2
        assert not result.semantically_unreachable

    def test_constant_false_branch_is_semantically_unreachable(self):
        program = compile_source(
            """
            int main(void) {
                int x = 1;
                if (0) {
                    x = 100;
                }
                return x;
            }
            """
        )
        cfgs, _ = reconstruct_program(program)
        cfg = cfgs["main"]
        loops = find_loops(cfg)
        values = ValueAnalysis(program, cfg, loops).run()
        result = find_unreachable_code(cfg, values)
        assert result.semantically_unreachable, "the if(0) body never executes"

    def test_fully_reachable_function_reports_nothing(self, counter_loop_program):
        cfgs, _ = reconstruct_program(counter_loop_program)
        result = find_unreachable_code(cfgs["main"])
        assert not result.has_unreachable_code
        assert result.all_unreachable() == []
        assert result.dead_instruction_count == 0


class TestReachabilityOnGeneratedCFGs:
    @pytest.mark.parametrize("seed", CFG_SEEDS)
    def test_unreachable_blocks_never_execute(self, seed):
        """Differential check: statically unreachable blocks stay unexecuted."""
        case = generate_case(seed)
        rendered = render_case(case)
        program = compile_source(rendered.source, entry=case.entry)
        cfgs, _ = reconstruct_program(
            program, hints=rendered.annotations.control_flow_hints, strict=False
        )
        execution = Interpreter(program, max_steps=case.max_steps).run(case.entry)
        executed = set(execution.trace.instruction_addresses)
        for name, cfg in cfgs.items():
            loops = find_loops(cfg)
            values = ValueAnalysis(program, cfg, loops).run()
            result = find_unreachable_code(cfg, values)
            for block_id in result.all_unreachable():
                for address in cfg.block(block_id).addresses():
                    assert address not in executed, (
                        f"seed {seed} {name}: {address:#x} reported unreachable "
                        "but present in the concrete trace"
                    )

    @pytest.mark.parametrize("seed", CFG_SEEDS)
    def test_structural_reachability_matches_cfg_walk(self, seed):
        _, cfgs = _generated_cfgs(seed)
        for cfg in cfgs.values():
            result = find_unreachable_code(cfg)
            reachable = cfg.reachable_from_entry()
            for block_id in cfg.node_ids():
                if block_id in reachable:
                    assert block_id not in result.structurally_unreachable
                else:
                    assert block_id in result.structurally_unreachable
