"""Tests for the mini-C frontend: lexer, parser, type checker, code generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodegenError, ParseError, TypeCheckError
from repro.ir import Interpreter
from repro.minic import compile_source, parse_source, tokenize
from repro.minic import ast
from repro.minic.lexer import TokenKind
from repro.minic.typecheck import check_types


def run_main(source: str, **kwargs) -> int:
    program = compile_source(source)
    return Interpreter(program).run(**kwargs).return_value


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("int x; while (x) {}")
        kinds = [token.kind for token in tokens[:3]]
        assert kinds == [TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.PUNCT]

    def test_hex_and_decimal_literals(self):
        tokens = tokenize("0xFF 42 7u")
        assert [token.value for token in tokens[:3]] == [255, 42, 7]

    def test_float_literals(self):
        tokens = tokenize("3.5 1.0e2")
        assert tokens[0].kind is TokenKind.FLOAT and tokens[0].value == 3.5
        assert tokens[1].value == 100.0

    def test_comments_are_skipped(self):
        tokens = tokenize("int a; // line\n/* block\nstill */ int b;")
        names = [t.text for t in tokens if t.kind is TokenKind.IDENT]
        assert names == ["a", "b"]

    def test_multi_character_operators(self):
        tokens = tokenize("a <<= b >= c != d")
        symbols = [t.text for t in tokens if t.kind is TokenKind.PUNCT]
        assert symbols == ["<<=", ">=", "!="]

    def test_bad_character_reports_position(self):
        with pytest.raises(ParseError):
            tokenize("int a = `;")

    def test_preprocessor_lines_ignored(self):
        tokens = tokenize("#include <stdio.h>\nint a;")
        assert tokens[0].is_keyword("int")


class TestParser:
    def test_global_and_function(self):
        unit = parse_source("int counter; int main(void) { return counter; }")
        assert [g.name for g in unit.globals] == ["counter"]
        assert unit.function("main") is not None

    def test_array_declaration(self):
        unit = parse_source("int table[8]; int main(void) { return table[3]; }")
        assert isinstance(unit.globals[0].var_type, ast.ArrayType)
        assert unit.globals[0].var_type.length == 8

    def test_variadic_parameter(self):
        unit = parse_source("int logf(int code, ...) { return code; }")
        assert unit.function("logf").variadic

    def test_control_statements(self):
        unit = parse_source(
            "int main(void) { int i; for (i = 0; i < 4; i++) { if (i == 2) break; "
            "else continue; } while (i) { i--; } do { i++; } while (i < 3); return i; }"
        )
        body = unit.function("main").body
        kinds = {type(node).__name__ for node in ast.walk(body)}
        assert {"ForStmt", "IfStmt", "WhileStmt", "DoWhileStmt", "BreakStmt",
                "ContinueStmt"} <= kinds

    def test_goto_and_labels(self):
        unit = parse_source("int main(void) { goto end; end: return 0; }")
        kinds = [type(node).__name__ for node in ast.walk(unit.function("main").body)]
        assert "GotoStmt" in kinds and "LabelStmt" in kinds

    def test_operator_precedence(self):
        unit = parse_source("int main(void) { return 2 + 3 * 4; }")
        ret = unit.function("main").body.statements[0]
        assert isinstance(ret.value, ast.BinaryExpr) and ret.value.op == "+"

    def test_missing_semicolon_is_an_error(self):
        with pytest.raises(ParseError):
            parse_source("int main(void) { return 0 }")

    def test_ternary_is_rejected_with_message(self):
        with pytest.raises(ParseError):
            parse_source("int main(void) { return 1 ? 2 : 3; }")


class TestTypeCheck:
    def test_undeclared_identifier(self):
        with pytest.raises(TypeCheckError):
            check_types(parse_source("int main(void) { return missing; }"))

    def test_wrong_arity_detected(self):
        with pytest.raises(TypeCheckError):
            check_types(parse_source("int f(int a) { return a; } int main(void) { return f(); }"))

    def test_goto_to_unknown_label(self):
        with pytest.raises(TypeCheckError):
            check_types(parse_source("int main(void) { goto nowhere; return 0; }"))

    def test_float_expression_typing(self):
        unit = check_types(parse_source("float g; int main(void) { g = g + 1.0; return 0; }"))
        assign = unit.function("main").body.statements[0].expr
        assert ast.type_is_float(assign.value.ctype)

    def test_address_taken_marks_variable(self):
        unit = check_types(
            parse_source("int main(void) { int x; int *p = &x; return *p; }")
        )
        declarations = [n for n in ast.walk(unit.function("main").body) if isinstance(n, ast.VarDecl)]
        x_decl = next(d for d in declarations if d.name == "x")
        assert x_decl.address_taken

    def test_builtin_malloc_is_known(self):
        check_types(parse_source("int main(void) { int *p = malloc(16); return 0; }"))


class TestCodegenSemantics:
    def test_arithmetic_and_precedence(self):
        assert run_main("int main(void) { return 2 + 3 * 4 - 6 / 2; }") == 11

    def test_for_loop_sum(self):
        assert run_main(
            "int main(void) { int i; int s = 0; for (i = 1; i <= 10; i++) { s += i; } return s; }"
        ) == 55

    def test_while_and_do_while(self):
        assert run_main(
            "int main(void) { int n = 0; int x = 1; while (x < 100) { x = x * 2; n++; }"
            " do { n++; } while (0); return n; }"
        ) == 8

    def test_nested_calls_and_arguments(self):
        source = (
            "int add(int a, int b) { return a + b; }\n"
            "int twice(int x) { return add(x, x); }\n"
            "int main(void) { return twice(add(3, 4)); }\n"
        )
        assert run_main(source) == 14

    def test_global_arrays_and_pointers(self):
        source = (
            "int data[4];\n"
            "int main(void) { int i; int *p = &data[1]; for (i = 0; i < 4; i++) data[i] = i * i; "
            "return *p + data[3]; }\n"
        )
        assert run_main(source) == 1 + 9

    def test_local_array_on_stack(self):
        source = (
            "int main(void) { int buf[4]; int i; int s = 0; "
            "for (i = 0; i < 4; i++) { buf[i] = i + 1; } "
            "for (i = 0; i < 4; i++) { s += buf[i]; } return s; }"
        )
        assert run_main(source) == 10

    def test_short_circuit_evaluation(self):
        source = (
            "int hits;\n"
            "int bump(void) { hits++; return 1; }\n"
            "int main(void) { int a = 0; if (a && bump()) { a = 5; } "
            "if (a || bump()) { a = 7; } return a * 10 + hits; }\n"
        )
        # a && bump(): bump not called; a || bump(): bump called once -> hits=1, a=7
        assert run_main(source) == 71

    def test_break_and_continue(self):
        source = (
            "int main(void) { int i; int s = 0; for (i = 0; i < 10; i++) {"
            " if (i == 3) continue; if (i == 6) break; s += i; } return s; }"
        )
        assert run_main(source) == 0 + 1 + 2 + 4 + 5

    def test_goto_loop(self):
        source = (
            "int main(void) { int i = 0; int s = 0;\n"
            "again: s += i; i++; if (i < 5) goto again; return s; }"
        )
        assert run_main(source) == 10

    def test_recursion(self):
        source = (
            "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }\n"
            "int main(void) { return fact(6); }"
        )
        assert run_main(source) == 720

    def test_unsigned_division_and_shift(self):
        source = (
            "int main(void) { unsigned int a = 0x80000000; unsigned int b = a >> 4; "
            "return b / 0x1000000; }"
        )
        assert run_main(source) == 8

    def test_float_computation(self):
        source = (
            "int main(void) { float x = 2.5; float y = 4.0; float z = x * y + 1.5; "
            "return (int) z; }"
        )
        assert run_main(source) == 11

    def test_function_pointer_call(self):
        source = (
            "int inc(void) { return 41; }\n"
            "int main(void) { int *handler = &inc; return handler() + 1; }"
        )
        assert run_main(source) == 42

    def test_malloc_returns_usable_memory(self):
        source = (
            "int main(void) { int i; int *p = malloc(32); int s = 0;"
            " for (i = 0; i < 8; i++) { p[i] = i; } for (i = 0; i < 8; i++) { s += p[i]; }"
            " return s; }"
        )
        assert run_main(source) == 28

    def test_compound_assignment_operators(self):
        source = (
            "int main(void) { int a = 10; a += 5; a -= 3; a *= 2; a /= 4; a |= 8; return a; }"
        )
        assert run_main(source) == ((10 + 5 - 3) * 2 // 4) | 8

    def test_constant_folding_keeps_semantics(self):
        assert run_main("int main(void) { return (16 - 1) * 2 + (1 << 4); }") == 46

    def test_source_lines_attached_to_instructions(self):
        program = compile_source("int main(void) {\n    return 1 + 2;\n}")
        lines = {i.source_line for i in program.function("main").instructions}
        assert 2 in lines

    def test_loop_labels_follow_source_lines(self):
        program = compile_source("int main(void) {\n    int i;\n    int s = 0;\n"
                                 "    for (i = 0; i < 3; i++) { s += i; }\n    return s;\n}")
        assert any(label.startswith("loop_4") for label in program.function("main").labels())

    def test_too_many_arguments_rejected(self):
        arguments = ", ".join(f"int a{i}" for i in range(9))
        call_args = ", ".join("1" for _ in range(9))
        source = (
            f"int f({arguments}) {{ return a0; }}\n"
            f"int main(void) {{ return f({call_args}); }}"
        )
        with pytest.raises(CodegenError):
            compile_source(source)

    @given(
        a=st.integers(-1000, 1000),
        b=st.integers(-1000, 1000),
        c=st.integers(1, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_expression_evaluation_matches_python(self, a, b, c):
        source = (
            "int main(void) { "
            f"int a = {a}; int b = {b}; int c = {c}; "
            "return (a + b) * 2 - a / c + (a > b) + (b % c); }"
        )
        expected = (a + b) * 2 - int(a / c) + int(a > b) + (b - int(b / c) * c)
        assert run_main(source) == expected
