"""The observability layer: tracing, metrics, structured logs.

The contract under test is threefold:

* **zero interference** — with no tracer installed, instrumented code paths
  record nothing and results are bit-identical to the uninstrumented seed;
* **end-to-end traces** — one ServerClient submit yields a single trace
  whose client-submit / queue-wait / dispatch / worker-execute / cache-flush
  spans share the trace id and form a consistent parent chain even across
  the worker process boundary;
* **standard formats** — ``GET /metrics`` parses as Prometheus text
  exposition, exported traces validate against the Chrome trace-event
  schema.
"""

import io
import json
import os

import pytest

from repro.api import AnalysisRequest, AnalysisService, Project, from_json, to_json
from repro.api.cli import main as cli_main
from repro.obs import logs as obs_logs
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.server import AnalysisServer, ProjectSpec, Scheduler, ServerClient
from repro.server.wire import ServerStats, ServerSubmit, WireError

MINI_C = "int main(void) { int x = 3; return x + 4; }"


@pytest.fixture(autouse=True)
def _restore_tracer():
    """Every test leaves the process untraced, whatever it installed."""
    previous = obs_trace.install(None)
    yield
    obs_trace.install(previous)


# --------------------------------------------------------------------------- #
# Tracer unit behaviour
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_stack_parenting_within_thread(self):
        tracer = obs_trace.Tracer()
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        tracer.end(inner)
        tracer.end(outer)
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert outer.parent_id is None

    def test_explicit_parent_beats_stack(self):
        tracer = obs_trace.Tracer()
        open_span = tracer.begin("open")
        ctx = {"trace_id": "feedface00000000", "parent_id": "p-1"}
        child = tracer.begin("child", parent=ctx)
        tracer.end(child)
        tracer.end(open_span)
        assert child.trace_id == "feedface00000000"
        assert child.parent_id == "p-1"

    def test_record_is_retroactive_and_stackless(self):
        tracer = obs_trace.Tracer()
        live = tracer.begin("live")
        tracer.record("waited", 1.0, 2.5, parent=live.context())
        tracer.end(live)
        spans = {span.name: span for span in tracer.drain()}
        assert spans["waited"].parent_id == live.span_id
        assert spans["waited"].seconds == pytest.approx(1.5)
        # record() never touched the stack: live ended cleanly as the top.
        assert spans["live"].end >= spans["live"].start

    def test_span_json_round_trip(self):
        tracer = obs_trace.Tracer()
        span = tracer.begin("s", attrs={"k": 1})
        tracer.end(span)
        clone = obs_trace.Span.from_json(span.to_json())
        assert clone.to_json() == span.to_json()

    def test_drain_by_trace_id(self):
        tracer = obs_trace.Tracer()
        a = tracer.begin("a", parent={"trace_id": "aaaa", "parent_id": None})
        tracer.end(a)
        b = tracer.begin("b", parent={"trace_id": "bbbb", "parent_id": None})
        tracer.end(b)
        drained = tracer.drain("aaaa")
        assert [span.name for span in drained] == ["a"]
        assert [span.name for span in tracer.drain()] == ["b"]

    def test_add_merges_shipped_spans(self):
        worker = obs_trace.Tracer(trace_id="cafe")
        span = worker.begin("remote")
        worker.end(span)
        shipped = [s.to_json() for s in worker.drain()]
        server = obs_trace.Tracer()
        assert server.add(shipped) == 1
        assert server.spans("cafe")[0].name == "remote"

    def test_module_helpers_are_noops_when_uninstalled(self):
        assert obs_trace.active() is None
        assert obs_trace.begin("x") is None
        obs_trace.end(None)  # must not raise
        with obs_trace.span("y") as span:
            span.set("k", "v")  # the shared no-op singleton absorbs this
        obs_trace.record("z", 0.0, 1.0)

    def test_chrome_export_and_validation(self, tmp_path):
        tracer = obs_trace.Tracer()
        span = tracer.begin("work", attrs={"n": 3})
        tracer.end(span)
        path = str(tmp_path / "t.json")
        count = obs_trace.write_chrome_trace(path, tracer.drain())
        assert count == 1
        with open(path) as handle:
            document = json.load(handle)
        assert obs_trace.validate_chrome(document) == []
        event = document["traceEvents"][0]
        assert event["ph"] == "X"
        assert event["args"]["n"] == 3
        # merge appends rather than overwriting
        extra = obs_trace.Tracer()
        more = extra.begin("more")
        extra.end(more)
        assert obs_trace.write_chrome_trace(path, extra.drain(), merge=True) == 2

    def test_validate_chrome_flags_malformed(self):
        assert obs_trace.validate_chrome([]) != []
        assert obs_trace.validate_chrome({}) != []
        bad = {"traceEvents": [{"name": 1, "ph": "X", "ts": "zero"}]}
        assert obs_trace.validate_chrome(bad)


# --------------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_gauge_histogram_render_and_parse(self):
        registry = obs_metrics.MetricsRegistry()
        counter = registry.counter("t_jobs_total", "jobs", labelnames=("lane",))
        counter.inc(lane="fast")
        counter.inc(2, lane="slow")
        gauge = registry.gauge("t_depth", "depth")
        gauge.set(7)
        histogram = registry.histogram("t_wait_seconds", "wait")
        histogram.observe(0.002)
        histogram.observe(5.0)
        parsed = obs_metrics.parse_exposition(registry.render())
        assert parsed['t_jobs_total{lane="fast"}'] == 1.0
        assert parsed['t_jobs_total{lane="slow"}'] == 2.0
        assert parsed["t_depth"] == 7.0
        assert parsed["t_wait_seconds_count"] == 2.0
        assert parsed["t_wait_seconds_sum"] == pytest.approx(5.002)
        assert parsed['t_wait_seconds_bucket{le="+Inf"}'] == 2.0
        # cumulative buckets are monotone
        buckets = [
            value for key, value in sorted(parsed.items()) if "_bucket" in key
        ]
        assert all(b >= 0 for b in buckets)

    def test_unlabelled_series_present_before_first_event(self):
        registry = obs_metrics.MetricsRegistry()
        registry.counter("t_zero_total", "never incremented")
        parsed = obs_metrics.parse_exposition(registry.render())
        assert parsed["t_zero_total"] == 0.0

    def test_get_or_create_is_idempotent_and_kind_checked(self):
        registry = obs_metrics.MetricsRegistry()
        first = registry.counter("t_c", "")
        assert registry.counter("t_c", "") is first
        with pytest.raises(ValueError):
            registry.gauge("t_c", "")

    def test_dump_diff_merge_round_trip(self):
        a = obs_metrics.MetricsRegistry()
        b = obs_metrics.MetricsRegistry()
        for registry in (a, b):
            registry.counter("t_n_total", "", labelnames=("k",))
            registry.histogram("t_h_seconds", "")
        before = b.dump()
        b.get("t_n_total").inc(3, k="x")
        b.get("t_h_seconds").observe(0.5)
        delta = obs_metrics.diff(before, b.dump())
        a.merge(delta)
        a.merge({"t_unknown_total": {"[]": 1.0}})  # version skew: ignored
        assert a.get("t_n_total").value(k="x") == 3.0
        parsed = obs_metrics.parse_exposition(a.render())
        assert parsed["t_h_seconds_count"] == 1.0

    def test_diff_drops_zero_entries(self):
        registry = obs_metrics.MetricsRegistry()
        registry.counter("t_a_total", "").inc()
        snapshot = registry.dump()
        assert obs_metrics.diff(snapshot, snapshot) == {}

    def test_gauge_merge_takes_latest_not_sum(self):
        registry = obs_metrics.MetricsRegistry()
        gauge = registry.gauge("t_g", "")
        gauge.set(5)
        gauge.merge({json.dumps([]): 9.0})
        assert gauge.value() == 9.0

    def test_parse_exposition_rejects_malformed(self):
        with pytest.raises(ValueError):
            obs_metrics.parse_exposition("t_x notanumber")

    def test_label_escaping(self):
        registry = obs_metrics.MetricsRegistry()
        counter = registry.counter("t_esc_total", "", labelnames=("p",))
        counter.inc(p='we"ird\\path')
        rendered = registry.render()
        assert 't_esc_total{p="we\\"ird\\\\path"}' in rendered
        assert obs_metrics.parse_exposition(rendered)


# --------------------------------------------------------------------------- #
# Structured logs
# --------------------------------------------------------------------------- #
class TestStructuredLogs:
    def test_json_lines_with_none_fields_dropped(self):
        stream = io.StringIO()
        logger = obs_logs.StructuredLogger(stream)
        logger.log("job_done", trace_id="abc", detail=None, seconds=1.5)
        entry = json.loads(stream.getvalue())
        assert entry["event"] == "job_done"
        assert entry["trace_id"] == "abc"
        assert entry["seconds"] == 1.5
        assert "detail" not in entry
        assert entry["pid"] == os.getpid()

    def test_disabled_logger_is_silent(self):
        logger = obs_logs.StructuredLogger()
        assert not logger.enabled
        logger.log("anything", huge="payload")  # must not raise

    def test_torn_stream_never_raises(self):
        stream = io.StringIO()
        stream.close()
        obs_logs.StructuredLogger(stream).log("event")


# --------------------------------------------------------------------------- #
# Wire schema: the new back-compat fields
# --------------------------------------------------------------------------- #
class TestWireFields:
    def test_submit_trace_round_trip(self):
        submit = ServerSubmit(
            project=ProjectSpec(source=MINI_C, name="t.c"),
            request=AnalysisRequest(),
            trace={"trace_id": "ab" * 8, "parent_id": "1-2f"},
        )
        submit.validate()
        clone = from_json(to_json(submit), ServerSubmit)
        assert clone.trace == submit.trace

    def test_submit_trace_defaults_none_and_old_envelopes_load(self):
        submit = ServerSubmit(
            project=ProjectSpec(source=MINI_C, name="t.c"),
            request=AnalysisRequest(),
        )
        data = to_json(submit)
        assert data["trace"] is None
        del data["trace"]  # a pre-observability client's envelope
        assert from_json(data, ServerSubmit).trace is None

    def test_submit_trace_validation_rejects_junk(self):
        for junk in ("not-a-dict", {"trace_id": 7}, {3: "x"}):
            submit = ServerSubmit(
                project=ProjectSpec(source=MINI_C, name="t.c"),
                request=AnalysisRequest(),
                trace=junk,
            )
            with pytest.raises(WireError):
                submit.validate()

    def test_stats_new_fields_round_trip_and_default(self):
        stats = ServerStats(
            uptime_seconds=1.0,
            workers=2,
            jobs={},
            queue_depth={"interactive": 1},
            exec_ema_seconds=0.25,
            metrics={"repro_jobs_executed_total": 4.0},
        )
        clone = from_json(to_json(stats), ServerStats)
        assert clone.exec_ema_seconds == 0.25
        assert clone.metrics == {"repro_jobs_executed_total": 4.0}
        old = to_json(stats)
        del old["exec_ema_seconds"]
        del old["metrics"]  # an old server's /healthz body
        loaded = from_json(old, ServerStats)
        assert loaded.exec_ema_seconds == 0.0
        assert loaded.metrics == {}


# --------------------------------------------------------------------------- #
# No-op path: tracing off must not change anything
# --------------------------------------------------------------------------- #
class TestNoopPath:
    def test_untraced_analysis_records_no_spans_and_identical_results(self):
        project = Project.from_source(MINI_C, cache="off")
        baseline = AnalysisService(project).analyze(AnalysisRequest())

        assert obs_trace.active() is None
        untraced = AnalysisService(
            Project.from_source(MINI_C, cache="off")
        ).analyze(AnalysisRequest())

        tracer = obs_trace.Tracer()
        obs_trace.install(tracer)
        traced = AnalysisService(
            Project.from_source(MINI_C, cache="off")
        ).analyze(AnalysisRequest())
        spans = tracer.drain()
        obs_trace.install(None)

        assert spans, "tracing on must record spans"
        for result in (untraced, traced):
            a, b = to_json(result), to_json(baseline)
            # timings are measurements, not results
            for payload in (a, b):
                payload.pop("seconds", None)
                for entry in payload["reports"]:
                    entry["report"].pop("phases", None)
            assert a == b


# --------------------------------------------------------------------------- #
# Scheduler + server integration
# --------------------------------------------------------------------------- #
class TestServerIntegration:
    def test_end_to_end_trace_across_worker_boundary(self, tmp_path):
        """One traced submit → one exported trace with the full span chain:
        client-submit → {queue-wait, dispatch} → worker-execute →
        analyze/cache-flush, consistent across the process boundary."""
        obs_trace.install(obs_trace.Tracer())
        trace_dir = str(tmp_path / "traces")
        with AnalysisServer(port=0, jobs=2, trace_dir=trace_dir) as server:
            client = ServerClient(server.url)
            result = client.analyze(
                ProjectSpec(workload="flight-control"),
                AnalysisRequest(all_modes=True),
            )
            assert result.reports[None].wcet_cycles == 2514
            assert result.reports["air"].bcet_cycles == 284

        files = [f for f in os.listdir(trace_dir) if f.startswith("trace-")]
        assert len(files) >= 1
        exported = None
        for name in files:
            with open(os.path.join(trace_dir, name)) as handle:
                document = json.load(handle)
            assert obs_trace.validate_chrome(document) == []
            names = {event["name"] for event in document["traceEvents"]}
            if "client-submit" in names:
                exported = document
        assert exported is not None
        by_name = {}
        by_id = {}
        for event in exported["traceEvents"]:
            by_name.setdefault(event["name"], event)
            by_id[event["args"]["span_id"]] = event
        for required in (
            "client-submit", "queue-wait", "dispatch",
            "worker-execute", "analyze", "cache-flush",
        ):
            assert required in by_name, f"missing span {required!r}"
        trace_ids = {event["args"]["trace_id"] for event in exported["traceEvents"]}
        assert len(trace_ids) == 1

        def parent_name(event):
            parent = event["args"].get("parent_id")
            return by_id[parent]["name"] if parent in by_id else None

        assert by_name["client-submit"]["args"].get("parent_id") is None
        assert parent_name(by_name["queue-wait"]) == "client-submit"
        assert parent_name(by_name["dispatch"]) == "client-submit"
        assert parent_name(by_name["worker-execute"]) == "dispatch"
        assert parent_name(by_name["analyze"]) == "worker-execute"
        assert parent_name(by_name["cache-flush"]) == "worker-execute"
        # worker spans really crossed the boundary: different pid
        assert (
            by_name["worker-execute"]["pid"] != by_name["dispatch"]["pid"]
        )

    def test_metrics_endpoint_parses_with_key_series(self, tmp_path):
        with AnalysisServer(port=0, jobs=1) as server:
            client = ServerClient(server.url)
            client.analyze(ProjectSpec(source=MINI_C, name="t.c"))
            import urllib.request

            with urllib.request.urlopen(server.url + "/metrics") as response:
                assert response.headers["Content-Type"].startswith("text/plain")
                text = response.read().decode()
        parsed = obs_metrics.parse_exposition(text)
        for series in (
            'repro_jobs_submitted_total{lane="interactive"}',
            "repro_jobs_executed_total",
            'repro_queue_depth{lane="interactive"}',
            'repro_faults_total{kind="worker_restarts"}',
            'repro_faults_total{kind="rejections"}',
            "repro_exec_ema_seconds",
            "repro_uptime_seconds",
            "repro_workers",
            "repro_dedup_joins_total",
            'repro_queue_wait_seconds_count{lane="interactive"}',
            "repro_exec_seconds_count",
            'repro_summary_cache_requests_total{tier="1",result="miss"}',
            "repro_store_quarantines_total",
            "repro_simplex_pivots_total",
            "repro_fixpoint_joins_total",
            "repro_kernel_jit_compiles_total",
            'repro_http_requests_total{method="POST",status="202"}',
        ):
            assert series in parsed, f"missing series {series!r}"
        assert parsed['repro_jobs_submitted_total{lane="interactive"}'] >= 1.0
        assert parsed["repro_jobs_executed_total"] >= 1.0
        assert parsed["repro_simplex_pivots_total"] > 0.0

    def test_healthz_exposes_lane_depth_ema_and_metrics(self):
        with AnalysisServer(port=0, jobs=1) as server:
            client = ServerClient(server.url)
            client.analyze(ProjectSpec(source=MINI_C, name="t.c"))
            stats = client.healthz()
        assert set(stats.queue_depth) == {"interactive", "batch"}
        assert stats.exec_ema_seconds > 0.0
        assert stats.metrics.get("repro_jobs_executed_total", 0.0) >= 1.0

    def test_dedup_join_records_instant_span(self):
        obs_trace.install(obs_trace.Tracer())
        scheduler = Scheduler()
        spec = ProjectSpec(source=MINI_C, name="t.c")
        first = scheduler.submit(spec, AnalysisRequest())
        joiner_ctx = {"trace_id": "beef" * 4, "parent_id": "1-1"}
        second = scheduler.submit(spec, AnalysisRequest(), trace=joiner_ctx)
        assert second.deduped
        joins = obs_trace.active().spans("beef" * 4)
        assert [span.name for span in joins] == ["dedup-join"]
        join = joins[0]
        assert join.parent_id == "1-1"
        # the join span references the shared execution's own trace
        assert scheduler.job(first.id) is not None
        assert join.attrs["shared_trace_id"] is not None

    def test_untraced_submit_mints_server_side_trace(self):
        obs_trace.install(obs_trace.Tracer())
        scheduler = Scheduler()
        scheduler.submit(ProjectSpec(source=MINI_C, name="t.c"), AnalysisRequest())
        execution = scheduler.pop()
        assert execution.trace is not None
        assert execution.trace["trace_id"]
        assert execution.trace["parent_id"] is None

    def test_untraced_server_keeps_executions_traceless(self):
        assert obs_trace.active() is None
        scheduler = Scheduler()
        scheduler.submit(ProjectSpec(source=MINI_C, name="t.c"), AnalysisRequest())
        execution = scheduler.pop()
        assert execution.trace is None


# --------------------------------------------------------------------------- #
# CLI surfaces
# --------------------------------------------------------------------------- #
class TestCLI:
    def test_analyze_trace_writes_valid_chrome_file(self, tmp_path, capsys):
        source = tmp_path / "t.c"
        source.write_text(MINI_C)
        out = tmp_path / "trace.json"
        code = cli_main(
            ["analyze", "--source", str(source), "--trace", str(out)]
        )
        assert code == 0
        with open(out) as handle:
            document = json.load(handle)
        assert obs_trace.validate_chrome(document) == []
        names = {event["name"] for event in document["traceEvents"]}
        assert "repro-analyze" in names
        assert "analyze" in names
        assert any(name.startswith("phase:") for name in names)
        # the CLI restored the untraced default
        assert obs_trace.active() is None

    def test_bench_profile_out_dumps_loadable_stats(self, tmp_path, monkeypatch):
        import pstats

        import repro.benchmarks as benchmarks

        def tiny_workload(label, jobs=1, cache_dir=None):
            project = Project.from_source(MINI_C, cache="off")
            AnalysisService(project).analyze(AnalysisRequest())
            return benchmarks.BenchmarkRecord(
                label=label,
                timestamp="t",
                total_seconds=0.1,
                phases={},
                identity={"sweep_checksum": "x", "sweep_violations": 0},
                workload={},
            )

        monkeypatch.setattr(benchmarks, "run_macro_workload", tiny_workload)
        out = tmp_path / "profile.pstats"
        code = cli_main(
            ["bench", "--profile-out", str(out), "--no-append", "--label", "t"]
        )
        assert code == 0
        stats = pstats.Stats(str(out))
        assert stats.total_calls > 0

    def test_benchmark_record_extra_serialised_only_when_set(self):
        from repro.benchmarks import BenchmarkRecord

        record = BenchmarkRecord(
            label="x", timestamp="t", total_seconds=1.0, phases={},
            identity={}, workload={},
        )
        assert "extra" not in record.to_json()
        record.extra["trace_overhead"] = {"overhead_fraction": 0.01}
        assert record.to_json()["extra"]["trace_overhead"][
            "overhead_fraction"
        ] == 0.01
