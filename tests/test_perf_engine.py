"""Unit tests for the performance-overhaul machinery itself.

The end-to-end identity of analysis results is guarded by
``test_engine_equivalence.py``; this module tests the new components in
isolation: the weak topological order, the copy-on-write abstract state, the
sparse simplex (including the shared phase-1 tableau), the parallel sweep
API, and the exclusive phase clock.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.domains.interval import Interval
from repro.analysis.domains.memstate import AbstractMemory, AbstractState, AbstractValue
from repro.analysis.wto import compute_wto
from repro.minic import compile_source
from repro.cfg.loops import find_loops
from repro.cfg.reconstruct import reconstruct_program
from repro.testing import generate_case, run_sweep
from repro.testing.oracle import OracleConfig
from repro.wcet import WCETAnalyzer
from repro.wcet import simplex
from repro.wcet.ilp import ILPProblem, LinearExpression, solve_ilp_pair
from repro.workloads import flight_control


NESTED_LOOPS = """
int work(int n) {
    int i;
    int j;
    int acc = 0;
    for (i = 0; i < 5; i++) {
        for (j = 0; j < 3; j++) {
            acc = acc + i * j;
        }
    }
    return acc;
}
"""


@pytest.fixture(scope="module")
def nested_cfg():
    program = compile_source(NESTED_LOOPS, entry="work")
    program.validate()
    cfgs, _ = reconstruct_program(program, strict=False)
    return cfgs["work"]


class TestWeakTopologicalOrder:
    def test_linearization_is_reverse_postorder(self, nested_cfg):
        wto = compute_wto(nested_cfg)
        order = nested_cfg.reverse_postorder()
        assert [wto.positions[node] for node in order] == list(range(len(order)))

    def test_every_edge_is_forward_or_enters_a_component_head(self, nested_cfg):
        wto = compute_wto(nested_cfg)
        for edge in nested_cfg.edges():
            if edge.source < 0 or edge.target < 0:
                continue
            if wto.positions[edge.source] < wto.positions[edge.target]:
                continue
            # Retreating edge: must target the head of a component that
            # contains the source — the defining WTO property.
            assert wto.is_head(edge.target)
            assert edge.source in wto.components[edge.target]

    def test_heads_are_the_loop_headers(self, nested_cfg):
        loops = find_loops(nested_cfg)
        wto = compute_wto(nested_cfg, loops)
        assert set(wto.heads) == set(loops.headers())
        assert len(wto.heads) == 2  # the two nested for-loops

    def test_inner_component_nested_in_outer(self, nested_cfg):
        wto = compute_wto(nested_cfg)
        outer, inner = (
            max(wto.components.values(), key=len),
            min(wto.components.values(), key=len),
        )
        assert inner < outer  # proper subset


class TestCopyOnWriteState:
    def test_copy_shares_until_written(self):
        state = AbstractState()
        state.set("r3", AbstractValue.const(7))
        state.memory.store_strong("g", 0, AbstractValue.const(1))
        clone = state.copy()
        assert clone.registers is state.registers
        clone.set("r4", AbstractValue.const(9))
        assert clone.registers is not state.registers
        assert "r4" not in state.registers
        assert state.get("r3").constant_value == 7

    def test_memory_mutation_does_not_leak_into_copies(self):
        state = AbstractState()
        state.memory.store_strong("g", 0, AbstractValue.const(1))
        clone = state.copy()
        clone.memory.store_strong("g", 0, AbstractValue.const(2))
        assert state.memory.load("g", 0).constant_value == 1
        assert clone.memory.load("g", 0).constant_value == 2

    def test_clobber_on_copy_preserves_original(self):
        memory = AbstractMemory()
        memory.store_strong("g", 0, AbstractValue.const(1))
        shared = memory.copy()
        shared.clobber_all()
        assert memory.load("g", 0).constant_value == 1
        assert len(shared) == 0

    def test_replace_value_keeps_facts(self):
        from repro.analysis.domains.memstate import PredicateFact
        from repro.ir.instructions import Opcode

        state = AbstractState()
        state.set("r3", AbstractValue(Interval(0, 10)))
        state.set("r5", AbstractValue(Interval(0, 1)))
        state.set_fact("r5", PredicateFact(Opcode.SLT, ("reg", "r3"), ("const", 4)))
        state.replace_value("r3", AbstractValue(Interval(0, 3)))
        assert "r5" in state.facts  # refinement must not kill the fact
        state.set("r3", AbstractValue.top())
        assert "r5" not in state.facts  # redefinition must kill it

    def test_slots_deny_dynamic_attributes(self):
        with pytest.raises((AttributeError, TypeError)):
            Interval(0, 1).unexpected = 1  # type: ignore[attr-defined]
        with pytest.raises((AttributeError, TypeError)):
            AbstractValue.top().unexpected = 1  # type: ignore[attr-defined]


class TestSparseSimplex:
    def _problem(self, maximise: bool) -> ILPProblem:
        problem = ILPProblem(name="t", maximise=maximise)
        problem.add_variable("x")
        problem.add_variable("y")
        problem.set_objective_coefficient("x", 3.0)
        problem.set_objective_coefficient("y", 2.0)
        problem.add_constraint(
            LinearExpression({"x": 1.0, "y": 1.0}), "<=", 10, name="cap"
        )
        problem.add_constraint(
            LinearExpression({"x": 1.0, "y": -1.0}), "==", 2, name="bal"
        )
        return problem

    def test_simplex_matches_scipy_backend(self):
        for maximise in (True, False):
            expected = self._problem(maximise).solve(backend="scipy")
            actual = self._problem(maximise).solve(backend="simplex")
            assert actual.objective == pytest.approx(expected.objective)

    def test_solve_pair_matches_independent_solves(self):
        first, second = self._problem(True), self._problem(False)
        paired = solve_ilp_pair(first, second, backend="simplex")
        independent = (
            self._problem(True).solve(backend="simplex"),
            self._problem(False).solve(backend="simplex"),
        )
        for got, want in zip(paired, independent):
            assert got.objective == want.objective
            assert got.values == want.values

    def test_solve_pair_falls_back_when_systems_differ(self):
        first = self._problem(True)
        second = self._problem(False)
        second.add_constraint(LinearExpression({"x": 1.0}), "<=", 3, name="extra")
        paired = solve_ilp_pair(first, second, backend="simplex")
        reference = self._problem(False)
        reference.add_constraint(LinearExpression({"x": 1.0}), "<=", 3, name="extra")
        expected = reference.solve(backend="simplex")
        # The second problem's extra constraint must actually bind — i.e. the
        # pair helper solved it against its own system, not the first one's.
        assert paired[1].objective == expected.objective
        assert paired[1].values == expected.values

    def test_prepared_tableau_is_reusable(self):
        # One phase 1, two different objectives: both must be optimal.
        a_ub = [{0: 1.0, 1: 1.0}]
        b_ub = [4.0]
        a_eq = [{0: 1.0, 1: -1.0}]
        b_eq = [0.0]
        prepared = simplex.prepare_sparse_tableau(2, a_ub, b_ub, a_eq, b_eq)
        maxi = simplex.optimise_prepared(prepared, [1.0, 1.0], maximise=True)
        mini = simplex.optimise_prepared(prepared, [1.0, 1.0], maximise=False)
        assert maxi.status == "optimal" and maxi.objective == pytest.approx(4.0)
        assert mini.status == "optimal" and mini.objective == pytest.approx(0.0)

    def test_dense_wrapper_equivalent_to_sparse(self):
        dense = simplex.solve_lp([2.0, 1.0], [[1.0, 1.0]], [3.0], [], [])
        sparse = simplex.solve_sparse_lp([2.0, 1.0], [{0: 1.0, 1: 1.0}], [3.0], [], [])
        assert dense.objective == sparse.objective
        assert dense.values == sparse.values

    def test_infeasible_and_unbounded_detection(self):
        infeasible = simplex.solve_sparse_lp(
            [1.0], [{0: 1.0}], [1.0], [{0: 1.0}], [5.0]
        )
        assert infeasible.status == "infeasible"
        unbounded = simplex.solve_sparse_lp([1.0], [], [], [], [])
        assert unbounded.status == "unbounded"


class TestParallelSweep:
    def test_parallel_results_match_serial(self):
        config = OracleConfig(max_input_vectors=2)
        seeds = [1, 2, 3, 4]
        serial = run_sweep(seeds, config, jobs=1)
        parallel = run_sweep(seeds, config, jobs=2)
        assert parallel.jobs == 2
        assert serial.bounds_by_case() == parallel.bounds_by_case()
        assert [r.ok for r in serial.results] == [r.ok for r in parallel.results]
        assert [r.seed for r in parallel.results] == seeds

    def test_sweep_aggregates(self):
        sweep = run_sweep([1, 2], OracleConfig(max_input_vectors=2), jobs=1)
        assert sweep.ok
        assert sweep.total_runs == 4
        phases = sweep.phase_seconds()
        assert {"compile", "analyze", "execute"} <= set(phases)


class TestBenchmarkTrajectory:
    def _record(self, label: str, seconds: float, checksum: str = "abc"):
        from repro.benchmarks import BenchmarkRecord

        return BenchmarkRecord(
            label=label,
            timestamp="2026-01-01T00:00:00Z",
            total_seconds=seconds,
            phases={"sweep.wall": seconds},
            identity={"sweep_checksum": checksum, "sweep_violations": 0},
            workload={"sweep_programs": 50},
        )

    def test_append_and_reload_roundtrip(self, tmp_path):
        from repro.benchmarks import append_record, load_history

        path = str(tmp_path / "BENCH_perf.json")
        append_record(path, self._record("first", 10.0))
        append_record(path, self._record("second", 3.0))
        history = load_history(path)
        assert [e["label"] for e in history["entries"]] == ["first", "second"]
        assert history["schema"] == 1

    def test_regression_check_flags_slowdown_and_result_drift(self, tmp_path):
        from repro.benchmarks import append_record, check_regression

        path = str(tmp_path / "BENCH_perf.json")
        append_record(path, self._record("baseline", 3.0))
        assert check_regression(path, self._record("ok", 3.3)) is None
        problem = check_regression(path, self._record("slow", 4.0))
        assert problem is not None and "regression" in problem
        drift = check_regression(path, self._record("drift", 3.0, checksum="zzz"))
        assert drift is not None and "changed" in drift

    def test_regression_check_passes_without_baseline(self, tmp_path):
        from repro.benchmarks import check_regression

        path = str(tmp_path / "BENCH_perf.json")
        assert check_regression(path, self._record("fresh", 5.0)) is None

    def test_wall_clock_not_compared_across_machines(self, tmp_path):
        from repro.benchmarks import append_record, check_regression

        path = str(tmp_path / "BENCH_perf.json")
        baseline = self._record("laptop", 3.0)
        baseline.machine = "other-arch-cpu64-py3.11.7"
        append_record(path, baseline)
        # 10x slower, but on different hardware: only the (matching)
        # checksum is checked, so the wall clock must not fail the gate.
        assert check_regression(path, self._record("ci", 30.0)) is None
        # ... while a checksum drift still fails regardless of machine.
        drift = check_regression(path, self._record("ci", 3.0, checksum="zzz"))
        assert drift is not None and "changed" in drift

    def test_wall_clock_not_compared_across_cache_modes(self, tmp_path):
        from repro.benchmarks import append_record, check_regression

        path = str(tmp_path / "BENCH_perf.json")
        warm = self._record("warm", 1.0)
        warm.cache = {"enabled": True, "warm": True, "tier2_hits": 100}
        append_record(path, warm)
        # A cold run is 3x slower than the warm baseline, but warm entries
        # are not wall-clock baselines for cold runs: only the checksum is
        # compared and the gate passes.
        cold = self._record("cold", 3.0)
        cold.cache = {"enabled": True, "warm": False, "tier2_hits": 0}
        assert check_regression(path, cold) is None
        # A second warm run 3x slower than the warm baseline does fail.
        slow_warm = self._record("slow warm", 3.0)
        slow_warm.cache = {"enabled": True, "warm": True, "tier2_hits": 100}
        problem = check_regression(path, slow_warm)
        assert problem is not None and "regression" in problem


class TestPhaseClock:
    def test_phases_are_exclusive_and_sum_to_analyze_time(self):
        program = flight_control.program()
        annotations = flight_control.annotations()
        from repro.hardware.processor import leon2_like

        analyzer = WCETAnalyzer(program, leon2_like(), annotations=annotations)
        started = time.perf_counter()
        report = analyzer.analyze()
        wall = time.perf_counter() - started
        phase_sum = sum(report.phase_seconds().values())
        # Exclusive accounting: the per-phase figures can never exceed the
        # wall clock of the analysis (the old implementation double-counted
        # nested callee analyses inside the caller's pipeline phase).
        assert phase_sum <= wall + 1e-6
        # ... and the named phases cover the analysis almost completely.
        assert phase_sum >= 0.5 * wall
