"""The analysis server: wire schema, scheduler, worker pool, HTTP, client.

The acceptance bar for everything here is *bit-identical results*: a job
served over HTTP must reproduce a direct :class:`AnalysisService` call field
for field (wall-clock phase timings excluded — they are measurements, not
results), including the pinned flight-control per-mode bounds.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.api import (
    AnalysisRequest,
    AnalysisService,
    Project,
    SchemaError,
    from_json,
    to_json,
)
from repro.api.cli import main as cli_main
from repro.api.service import AnalysisResult
from repro.server import (
    AnalysisServer,
    JobFailed,
    ProjectSpec,
    QueueFull,
    RemoteError,
    ResultNotReady,
    Scheduler,
    ServerClient,
    ServerError,
    ServerEvent,
    ServerJobStatus,
    ServerStats,
    ServerSubmit,
    ServerSubmitReply,
    WorkerPool,
    request_digest,
)
from repro.server.client import JobCancelled
from repro.testing import faults as fault_injection
from repro.wcet.analyzer import AnalysisOptions

MINI_C = "int main(void) { int x = 3; return x + 4; }"


def result_identity(result):
    """Everything in a result's JSON except wall-clock measurements."""

    def strip(node):
        if isinstance(node, dict):
            return {
                key: strip(value)
                for key, value in node.items()
                if key not in ("phases", "seconds", "cache_stats")
            }
        if isinstance(node, list):
            return [strip(value) for value in node]
        return node

    return strip(to_json(result))


# --------------------------------------------------------------------------- #
# Wire messages: exact schema-1 round-trips
# --------------------------------------------------------------------------- #
class TestWireRoundTrips:
    MESSAGES = [
        ProjectSpec(workload="flight-control", processor="leon2", entry="main"),
        ProjectSpec(source=MINI_C, annotations="recursion f 4\n", name="t.c"),
        ProjectSpec(assembly=".func main\n    halt", processor="hcs12x"),
        AnalysisOptions(),
        AnalysisOptions(ilp_backend="simplex", compute_bcet=False,
                        max_contexts_per_function=3),
        AnalysisRequest(),
        AnalysisRequest(entry="task", mode="air", error_scenario="single_fault",
                        options=AnalysisOptions(strict_indirect=False),
                        check_guidelines=True, label="wire"),
        ServerSubmit(project=ProjectSpec(workload="message-handler"),
                     request=AnalysisRequest(all_modes=True), lane="batch"),
        ServerSubmit(project=ProjectSpec(workload="message-handler"),
                     request=AnalysisRequest(), timeout=45.5),
        ServerSubmitReply(job_id="j000001", state="queued", lane="interactive",
                          deduped=True, position=2),
        ServerError(error="AnalysisError", message="unbounded loop", job_id="j1"),
        ServerError(error="QueueFull", message="lane at capacity",
                    retry_after=12.0),
        ServerJobStatus(job_id="j000002", state="failed", lane="batch",
                        label="x", deduped=False, submitted=1.5, started=2.5,
                        finished=3.5, seconds=1.0, position=-1,
                        error=ServerError(error="E", message="m")),
        ServerJobStatus(job_id="j000003", state="queued", lane="interactive",
                        position=0),
        ServerEvent(job_id="j000004", seq=3, event="done", state="done",
                    detail="", ts=12.25),
        ServerStats(uptime_seconds=5.0, workers=4,
                    jobs={"queued": 1, "done": 2},
                    queue_depth={"interactive": 1, "batch": 0},
                    dedup_hits=3, submitted=6, executed=2,
                    cache={"tier1_hits": 9}, phase_seconds={"ipet": 0.25},
                    faults={"worker_restarts": 2, "rejections": 1},
                    queue_limit=8),
    ]

    @pytest.mark.parametrize("message", MESSAGES, ids=lambda m: type(m).__name__)
    def test_exact_round_trip_through_json_text(self, message):
        payload = json.loads(json.dumps(to_json(message)))
        assert payload["schema"] == 1
        assert from_json(payload, type(message)) == message
        # And a second serialisation is byte-stable.
        assert to_json(from_json(payload)) == payload

    def test_unknown_schema_version_rejected(self):
        payload = to_json(ServerError(error="E", message="m"))
        payload["schema"] = 99
        with pytest.raises(SchemaError, match="unsupported schema version"):
            from_json(payload)

    def test_kind_mismatch_rejected(self):
        payload = to_json(ServerError(error="E", message="m"))
        with pytest.raises(SchemaError, match="expected a serialised"):
            from_json(payload, ServerStats)

    def test_missing_field_rejected(self):
        payload = to_json(ServerSubmitReply(job_id="j", state="queued", lane="batch"))
        del payload["position"]
        with pytest.raises(SchemaError, match="missing field"):
            from_json(payload)

    def test_unknown_options_knob_rejected(self):
        payload = to_json(AnalysisOptions())
        payload["warp_speed"] = True
        with pytest.raises(SchemaError, match="malformed"):
            from_json(payload)

    def test_result_payload_is_plain_analysis_result(self):
        """A finished job's payload is the existing AnalysisResult kind."""
        result = AnalysisService(
            Project.from_workload("message-handler", cache="off")
        ).analyze(AnalysisRequest(label="wire-check"))
        payload = json.loads(json.dumps(to_json(result)))
        assert payload["kind"] == "AnalysisResult"
        assert from_json(payload, AnalysisResult).wcet_cycles == result.wcet_cycles


class TestRequestDigest:
    SPEC = ProjectSpec(workload="flight-control")

    def test_label_excluded_from_identity(self):
        a = request_digest(self.SPEC, AnalysisRequest(label="a"))
        b = request_digest(self.SPEC, AnalysisRequest(label="b"))
        assert a == b

    def test_every_other_knob_is_identity(self):
        base = request_digest(self.SPEC, AnalysisRequest())
        assert request_digest(self.SPEC, AnalysisRequest(mode="air")) != base
        assert request_digest(self.SPEC, AnalysisRequest(all_modes=True)) != base
        assert request_digest(self.SPEC, AnalysisRequest(check_guidelines=True)) != base
        assert (
            request_digest(
                self.SPEC,
                AnalysisRequest(options=AnalysisOptions(compute_bcet=False)),
            )
            != base
        )
        other = ProjectSpec(workload="message-handler")
        assert request_digest(other, AnalysisRequest()) != base


# --------------------------------------------------------------------------- #
# Scheduler semantics (no workers: jobs stay queued until popped)
# --------------------------------------------------------------------------- #
def _fake_result(label="x"):
    return AnalysisResult(label=label, entry="main", processor="simple")


class TestScheduler:
    def test_identical_submissions_share_one_execution(self):
        scheduler = Scheduler()
        spec = ProjectSpec(workload="flight-control")
        first = scheduler.submit(spec, AnalysisRequest(label="first"))
        second = scheduler.submit(spec, AnalysisRequest(label="second"))
        assert not first.deduped and second.deduped
        assert first.execution is second.execution
        assert scheduler.dedup_hits == 1

        execution = scheduler.pop(timeout=1)
        assert execution is first.execution
        assert scheduler.pop(timeout=0.05) is None  # only ONE execution queued

        scheduler.complete(execution, result=_fake_result("computed"))
        # Both subscribers got the result, each under its own label.
        assert first.result.label == "first"
        assert second.result.label == "second"
        assert first.state == second.state == "done"

    def test_invalid_lane_rejected_before_touching_state(self):
        scheduler = Scheduler()
        spec = ProjectSpec(workload="flight-control")
        with pytest.raises(ValueError, match="lane"):
            scheduler.submit(spec, AnalysisRequest(), lane="warp")
        # No zombie execution was left behind to poison dedup.
        job = scheduler.submit(spec, AnalysisRequest())
        assert not job.deduped
        assert scheduler.pop(timeout=1) is job.execution

    def test_priority_lanes_and_fifo_within_lane(self):
        scheduler = Scheduler()
        spec = ProjectSpec(workload="flight-control")
        batch1 = scheduler.submit(spec, AnalysisRequest(mode="air"), lane="batch")
        batch2 = scheduler.submit(spec, AnalysisRequest(mode="ground"), lane="batch")
        urgent = scheduler.submit(spec, AnalysisRequest(all_modes=True))
        assert scheduler.queue_depth() == {"interactive": 1, "batch": 2}
        popped = [scheduler.pop(timeout=1) for _ in range(3)]
        assert popped == [urgent.execution, batch1.execution, batch2.execution]

    def test_interactive_join_promotes_batch_execution(self):
        scheduler = Scheduler()
        spec = ProjectSpec(workload="flight-control")
        early_batch = scheduler.submit(spec, AnalysisRequest(mode="air"), lane="batch")
        slow = scheduler.submit(spec, AnalysisRequest(mode="ground"), lane="batch")
        # An interactive subscriber joins the *second* batch execution...
        joiner = scheduler.submit(spec, AnalysisRequest(mode="ground", label="hi"))
        assert joiner.deduped and joiner.execution is slow.execution
        # ...which therefore overtakes the earlier batch-only execution.
        assert scheduler.pop(timeout=1) is slow.execution
        assert scheduler.pop(timeout=1) is early_batch.execution

    def test_cancel_follower_leaves_execution_running(self):
        scheduler = Scheduler()
        spec = ProjectSpec(workload="flight-control")
        keeper = scheduler.submit(spec, AnalysisRequest())
        follower = scheduler.submit(spec, AnalysisRequest(label="f"))
        scheduler.cancel(follower.id)
        assert follower.state == "cancelled"
        execution = scheduler.pop(timeout=1)
        scheduler.complete(execution, result=_fake_result())
        assert keeper.state == "done" and keeper.result is not None
        assert follower.state == "cancelled" and follower.result is None

    def test_cancelling_every_subscriber_drops_queued_execution(self):
        scheduler = Scheduler()
        spec = ProjectSpec(workload="flight-control")
        only = scheduler.submit(spec, AnalysisRequest())
        scheduler.cancel(only.id)
        assert scheduler.pop(timeout=0.05) is None
        # The dedup slot is freed: a re-submission queues a NEW execution.
        again = scheduler.submit(spec, AnalysisRequest())
        assert not again.deduped

    def test_failed_execution_fans_error_to_subscribers(self):
        scheduler = Scheduler()
        spec = ProjectSpec(workload="flight-control")
        job = scheduler.submit(spec, AnalysisRequest())
        execution = scheduler.pop(timeout=1)
        scheduler.complete(
            execution, error=ServerError(error="AnalysisError", message="boom")
        )
        assert job.state == "failed"
        assert job.error.message == "boom"
        events = [event.event for event in job.events]
        assert events == ["queued", "started", "failed"]

    def test_events_sequence_for_happy_path(self):
        scheduler = Scheduler()
        job = scheduler.submit(ProjectSpec(workload="flight-control"), AnalysisRequest())
        scheduler.complete(scheduler.pop(timeout=1), result=_fake_result())
        assert [event.event for event in job.events] == ["queued", "started", "done"]
        assert [event.seq for event in job.events] == [1, 2, 3]

    def test_admission_control_rejects_over_limit_but_admits_joins(self):
        scheduler = Scheduler(max_queue=1)
        spec = ProjectSpec(workload="flight-control")
        scheduler.submit(spec, AnalysisRequest())
        with pytest.raises(QueueFull) as excinfo:
            scheduler.submit(spec, AnalysisRequest(mode="air"))
        assert excinfo.value.retry_after >= 1.0
        assert excinfo.value.limit == 1
        assert scheduler.faults["rejections"] == 1
        # A dedup join adds no work, so it bypasses admission control...
        joiner = scheduler.submit(spec, AnalysisRequest(label="join"))
        assert joiner.deduped
        # ...and a rejected submission left no state behind: once the queue
        # drains, the same request is admitted as a NEW execution.
        assert scheduler.pop(timeout=1) is not None
        again = scheduler.submit(spec, AnalysisRequest(mode="air"))
        assert not again.deduped

    def test_admission_limit_validated(self):
        with pytest.raises(ValueError, match="max_queue"):
            Scheduler(max_queue=0)

    def test_dedup_join_can_only_tighten_the_deadline(self):
        scheduler = Scheduler()
        spec = ProjectSpec(workload="flight-control")
        first = scheduler.submit(spec, AnalysisRequest(), timeout=60.0)
        assert first.execution.timeout == 60.0
        scheduler.submit(spec, AnalysisRequest(label="b"), timeout=10.0)
        assert first.execution.timeout == 10.0
        scheduler.submit(spec, AnalysisRequest(label="c"), timeout=120.0)
        assert first.execution.timeout == 10.0  # joins never loosen

    def test_late_outcome_after_terminal_state_is_ignored(self):
        """A straggling attempt's result must not resurrect a resolved job."""
        scheduler = Scheduler()
        job = scheduler.submit(ProjectSpec(workload="flight-control"), AnalysisRequest())
        execution = scheduler.pop(timeout=1)
        scheduler.complete(
            execution, error=ServerError(error="JobTimeout", message="deadline")
        )
        assert job.state == "failed"
        executed = scheduler.executed
        scheduler.complete(execution, result=_fake_result())  # straggler
        assert job.state == "failed" and job.result is None
        assert scheduler.executed == executed


# --------------------------------------------------------------------------- #
# Worker pool (inline mode, no HTTP): results equal the direct facade
# --------------------------------------------------------------------------- #
class TestWorkerPool:
    def test_inline_pool_serves_bit_identical_results(self):
        scheduler = Scheduler()
        pool = WorkerPool(scheduler, jobs=1)
        pool.start()
        try:
            spec = ProjectSpec(source=MINI_C, name="t.c")
            job = scheduler.submit(spec, AnalysisRequest(label="served"))
            for _ in range(400):
                if job.state in ("done", "failed"):
                    break
                import time

                time.sleep(0.025)
            assert job.state == "done", job.error and job.error.message
            direct = AnalysisService(
                spec.to_project(cache="off")
            ).analyze(AnalysisRequest(label="served"))
            assert result_identity(job.result) == result_identity(direct)
        finally:
            scheduler.close()
            pool.shutdown()

    def test_process_pool_shares_store_and_matches_direct(self, tmp_path):
        """jobs>1: analyses run in worker *processes* that share one on-disk
        summary store, and results stay bit-identical to direct calls."""
        import time

        scheduler = Scheduler()
        pool = WorkerPool(scheduler, jobs=2, cache_dir=str(tmp_path))
        pool.start()
        try:
            specs = [
                ProjectSpec(source=MINI_C, name="t.c"),
                ProjectSpec(workload="message-handler"),
            ]
            jobs = [
                scheduler.submit(spec, AnalysisRequest(label=f"p{index}"))
                for index, spec in enumerate(specs)
            ]
            deadline = time.monotonic() + 60
            while any(job.state not in ("done", "failed") for job in jobs):
                assert time.monotonic() < deadline, "process pool stalled"
                time.sleep(0.05)
            for index, (spec, job) in enumerate(zip(specs, jobs)):
                assert job.state == "done", job.error and job.error.message
                direct = AnalysisService(spec.to_project(cache="off")).analyze(
                    AnalysisRequest(label=f"p{index}")
                )
                assert result_identity(job.result) == result_identity(direct)
            # The workers flushed their summaries into the shared store.
            assert list(tmp_path.glob("*.pkl")), "workers did not share the store"
        finally:
            scheduler.close()
            pool.shutdown()

    def test_worker_failure_travels_back_as_server_error(self):
        scheduler = Scheduler()
        pool = WorkerPool(scheduler, jobs=1)
        pool.start()
        try:
            job = scheduler.submit(
                ProjectSpec(workload="no-such-workload"), AnalysisRequest()
            )
            for _ in range(200):
                if job.state in ("done", "failed"):
                    break
                import time

                time.sleep(0.025)
            assert job.state == "failed"
            assert "no-such-workload" in job.error.message
        finally:
            scheduler.close()
            pool.shutdown()


# --------------------------------------------------------------------------- #
# Supervised pool (jobs >= 2): crash/deadline fault tolerance
# --------------------------------------------------------------------------- #
class TestSupervisedPool:
    @staticmethod
    def _wait(jobs, seconds=120):
        deadline = time.monotonic() + seconds
        while any(job.state not in ("done", "failed") for job in jobs):
            assert time.monotonic() < deadline, "supervised pool stalled"
            time.sleep(0.05)

    def test_worker_killed_mid_job_is_respawned_and_job_retried(self, tmp_path):
        """SIGKILL a pool worker mid-job: the supervisor must observe the
        death, respawn the worker, retry the job, and still serve the
        bit-identical result."""
        # A certain hang holds the job mid-flight long enough to kill the
        # worker under it deterministically; the deadline is far away, so the
        # only fault in play is the kill.
        fault_injection.install(
            fault_injection.FaultPlan(seed=3, hang_rate=1.0, hang_seconds=60.0)
        )
        scheduler = Scheduler()
        pool = WorkerPool(scheduler, jobs=2, cache_dir=str(tmp_path), job_timeout=120.0)
        pool.start()
        try:
            spec = ProjectSpec(source=MINI_C, name="t.c")
            job = scheduler.submit(spec, AnalysisRequest(label="survivor"))
            deadline = time.monotonic() + 30
            while job.state != "running" or not pool.worker_pids():
                assert time.monotonic() < deadline, "job never reached a worker"
                time.sleep(0.05)
            time.sleep(0.3)  # let the worker settle into the injected hang
            for pid in pool.worker_pids():
                os.kill(pid, signal.SIGKILL)
            self._wait([job])
            assert job.state == "done", job.error and job.error.message
            direct = AnalysisService(spec.to_project(cache="off")).analyze(
                AnalysisRequest(label="survivor")
            )
            assert result_identity(job.result) == result_identity(direct)
            assert scheduler.faults.get("worker_restarts", 0) >= 1
            assert scheduler.faults.get("job_retries", 0) >= 1
            assert any(
                event.event == "retrying" for event in job.events
            ), [event.event for event in job.events]
        finally:
            fault_injection.clear()
            scheduler.close()
            pool.shutdown()

    def test_deadline_expiry_surfaces_typed_job_timeout(self, tmp_path):
        """A job hanging past its per-job deadline is killed and — with the
        retry budget exhausted — fails with a typed JobTimeout envelope."""
        fault_injection.install(
            fault_injection.FaultPlan(seed=5, hang_rate=1.0, hang_seconds=30.0)
        )
        scheduler = Scheduler()
        pool = WorkerPool(
            scheduler,
            jobs=2,
            cache_dir=str(tmp_path),
            job_timeout=120.0,
            timeout_retries=0,
        )
        pool.start()
        try:
            # The per-submission deadline overrides the pool default.
            job = scheduler.submit(
                ProjectSpec(source=MINI_C, name="t.c"),
                AnalysisRequest(),
                timeout=1.5,
            )
            self._wait([job], seconds=60)
            assert job.state == "failed"
            assert job.error.error == "JobTimeout"
            assert "deadline" in job.error.message
            assert "attempt(s)" in job.error.message
            assert scheduler.faults.get("job_timeouts", 0) >= 1
        finally:
            fault_injection.clear()
            scheduler.close()
            pool.shutdown()

    def test_deterministic_failure_is_not_retried(self, tmp_path):
        """A ReproError travels back typed and burns no retry budget."""
        scheduler = Scheduler()
        pool = WorkerPool(scheduler, jobs=2, cache_dir=str(tmp_path))
        pool.start()
        try:
            job = scheduler.submit(
                ProjectSpec(workload="no-such-workload"), AnalysisRequest()
            )
            self._wait([job], seconds=60)
            assert job.state == "failed"
            assert "no-such-workload" in job.error.message
            assert scheduler.faults.get("job_retries", 0) == 0
            assert job.execution.attempts == 0
        finally:
            scheduler.close()
            pool.shutdown()


# --------------------------------------------------------------------------- #
# HTTP end to end
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def server():
    with AnalysisServer(port=0, jobs=1) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    return ServerClient(server.url, timeout=60)


#: The repo-wide acceptance pins (see tests/test_api.py and ISSUE 5).
FLIGHT_CONTROL_PINS = {None: (2514, 87), "air": (2514, 284), "ground": (161, 87)}


class TestHTTPEndToEnd:
    def test_flight_control_pins_and_bit_identity(self, client):
        remote = client.analyze(
            ProjectSpec(workload="flight-control"),
            AnalysisRequest(all_modes=True, label="remote"),
            timeout=120,
        )
        assert {
            mode: (r.wcet_cycles, r.bcet_cycles) for mode, r in remote.reports.items()
        } == FLIGHT_CONTROL_PINS
        direct = AnalysisService(
            Project.from_workload("flight-control", cache="off")
        ).analyze(AnalysisRequest(all_modes=True, label="remote"))
        assert result_identity(remote) == result_identity(direct)

    def test_dedup_over_http_and_healthz_accounting(self, client):
        spec = ProjectSpec(workload="message-handler")
        request = AnalysisRequest(mode=None, label="dedup-a")
        job_a = client.submit(spec, request)
        job_b = client.submit(spec, AnalysisRequest(mode=None, label="dedup-b"))
        result_a = job_a.result(timeout=120)
        result_b = job_b.result(timeout=120)
        assert job_b.deduped or job_a.deduped is False and job_b.deduped is False
        # Labels stay per-subscriber even when the execution was shared...
        assert result_a.label == "dedup-a"
        assert result_b.label == "dedup-b"
        # ...but the analysis payload is the same shared computation.
        assert result_identity(result_a)["reports"] == result_identity(result_b)["reports"]
        stats = client.healthz()
        assert isinstance(stats, ServerStats)
        assert stats.submitted >= 2
        assert stats.executed >= 1
        assert stats.jobs.get("done", 0) >= 2
        assert stats.cache.get("puts", 0) >= 0  # counters merged in

    def test_events_stream_ends_with_terminal_event(self, client):
        job = client.submit(
            ProjectSpec(workload="message-handler"),
            AnalysisRequest(label="events"),
        )
        events = list(job.events())
        assert [event.event for event in events][-1] in ("done", "failed")
        assert [event.event for event in events][0] == "queued"
        assert all(isinstance(event, ServerEvent) for event in events)
        # Resuming past the end yields nothing new and terminates.
        assert list(job.events(since=events[-1].seq)) == []

    def test_status_envelope_fields(self, client):
        job = client.submit(
            ProjectSpec(workload="message-handler"), AnalysisRequest(label="st")
        )
        job.result(timeout=120)
        status = job.status()
        assert isinstance(status, ServerJobStatus)
        assert status.state == "done"
        assert status.label == "st"
        assert status.finished >= status.started >= status.submitted > 0
        assert status.seconds > 0

    def test_unknown_job_is_404(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.status("j999999")
        assert excinfo.value.status == 404
        assert excinfo.value.error.error == "UnknownJob"

    def test_malformed_submit_is_400(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client._call("POST", "/v1/jobs", {"schema": 1, "kind": "ServerSubmit"})
        assert excinfo.value.status == 400

    def test_submit_rejects_unknown_lane_and_processor(self, client):
        with pytest.raises(RemoteError, match="lane"):
            client.submit(
                ProjectSpec(workload="message-handler"),
                AnalysisRequest(),
                lane="warp",
            )
        with pytest.raises(RemoteError, match="processor"):
            client.submit(
                ProjectSpec(workload="message-handler", processor="z80"),
                AnalysisRequest(),
            )

    def test_failing_analysis_surfaces_as_job_failed(self, client):
        job = client.submit(ProjectSpec(workload="no-such-workload"), AnalysisRequest())
        with pytest.raises(JobFailed) as excinfo:
            job.result(timeout=60)
        assert excinfo.value.status == 500
        assert "no-such-workload" in excinfo.value.error.message

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client._call("GET", "/v2/nope")
        assert excinfo.value.status == 404

    def test_cli_analyze_remote_matches_pins(self, client, capsys):
        status = cli_main(
            ["analyze", "--workload", "flight-control", "--all-modes",
             "--remote", client.url, "--json"]
        )
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "AnalysisResult"
        assert {
            entry["mode"]: (
                entry["report"]["wcet_cycles"],
                entry["report"]["bcet_cycles"],
            )
            for entry in payload["reports"]
        } == {
            str(mode) if mode else None: bounds
            for mode, bounds in FLIGHT_CONTROL_PINS.items()
        }


# --------------------------------------------------------------------------- #
# Queue-state HTTP semantics (server with NO workers: jobs stay queued)
# --------------------------------------------------------------------------- #
class TestQueuedJobHTTP:
    @pytest.fixture()
    def idle_server(self):
        server = AnalysisServer(port=0, jobs=1)
        # Start ONLY the listener — no worker pool, so jobs never leave the
        # queue and the not-ready/cancel paths are deterministic.
        thread = threading.Thread(target=server._httpd.serve_forever, daemon=True)
        thread.start()
        yield server
        server.scheduler.close()
        server._httpd.shutdown()
        server._httpd.server_close()

    def test_result_before_completion_is_409_then_410_after_cancel(self, idle_server):
        client = ServerClient(idle_server.url, timeout=10)
        job = client.submit(ProjectSpec(workload="message-handler"), AnalysisRequest())
        with pytest.raises(ResultNotReady) as excinfo:
            client.result(job.id)
        assert excinfo.value.status == 409
        status = client.cancel(job.id)
        assert status.state == "cancelled"
        with pytest.raises(JobCancelled) as excinfo:
            client.result(job.id)
        assert excinfo.value.status == 410

    def test_queue_position_reported_while_queued(self, idle_server):
        client = ServerClient(idle_server.url, timeout=10)
        first = client.submit(ProjectSpec(workload="message-handler"), AnalysisRequest())
        second = client.submit(
            ProjectSpec(workload="flight-control"), AnalysisRequest()
        )
        assert client.status(first.id).position == 0
        assert client.status(second.id).position == 1
        assert client.healthz().queue_depth == {"interactive": 2, "batch": 0}


# --------------------------------------------------------------------------- #
# Admission control over HTTP (bounded queue, no workers)
# --------------------------------------------------------------------------- #
class TestAdmissionControlHTTP:
    @pytest.fixture()
    def bounded_idle_server(self):
        server = AnalysisServer(port=0, jobs=1, max_queue=1)
        # Listener only — no workers — so the queue stays full deterministically.
        thread = threading.Thread(target=server._httpd.serve_forever, daemon=True)
        thread.start()
        yield server
        server.scheduler.close()
        server._httpd.shutdown()
        server._httpd.server_close()

    def test_queue_full_is_429_envelope_with_retry_after(self, bounded_idle_server):
        client = ServerClient(bounded_idle_server.url, timeout=10)
        client.submit(ProjectSpec(workload="message-handler"), AnalysisRequest())
        with pytest.raises(RemoteError) as excinfo:
            client.submit(
                ProjectSpec(workload="flight-control"), AnalysisRequest(), retries=0
            )
        assert excinfo.value.status == 429
        assert excinfo.value.error.error == "QueueFull"
        # The hint arrives both as a Retry-After header and in the envelope.
        assert excinfo.value.retry_after is not None
        assert excinfo.value.retry_after >= 1
        assert excinfo.value.error.retry_after >= 1
        stats = client.healthz()
        assert stats.faults.get("rejections", 0) >= 1
        assert stats.queue_limit == 1

    def test_dedup_join_admitted_while_lane_full(self, bounded_idle_server):
        client = ServerClient(bounded_idle_server.url, timeout=10)
        client.submit(ProjectSpec(workload="message-handler"), AnalysisRequest())
        joiner = client.submit(
            ProjectSpec(workload="message-handler"),
            AnalysisRequest(label="join"),
            retries=0,
        )
        assert joiner.deduped

    def test_submit_retries_sleep_on_the_hint_then_surface_429(
        self, bounded_idle_server
    ):
        client = ServerClient(bounded_idle_server.url, timeout=10)
        client.submit(ProjectSpec(workload="message-handler"), AnalysisRequest())
        started = time.monotonic()
        with pytest.raises(RemoteError) as excinfo:
            client.submit(
                ProjectSpec(workload="flight-control"), AnalysisRequest(), retries=2
            )
        elapsed = time.monotonic() - started
        assert excinfo.value.status == 429
        # 1 initial + 2 retried attempts, each rejected and counted...
        assert client.healthz().faults.get("rejections", 0) >= 3
        # ...with a jittered sleep (>= hint/2 each) between attempts.
        assert elapsed >= 1.0

    def test_job_timeout_travels_to_the_execution(self, bounded_idle_server):
        client = ServerClient(bounded_idle_server.url, timeout=10)
        job = client.submit(
            ProjectSpec(workload="message-handler"),
            AnalysisRequest(),
            job_timeout=2.5,
        )
        execution = bounded_idle_server.scheduler.job(job.id).execution
        assert execution.timeout == 2.5


# --------------------------------------------------------------------------- #
# Graceful shutdown via the protocol
# --------------------------------------------------------------------------- #
class TestShutdown:
    def test_http_shutdown_drains_and_stops_listening(self):
        server = AnalysisServer(port=0, jobs=1).start()
        client = ServerClient(server.url, timeout=60)
        result = client.analyze(
            ProjectSpec(source=MINI_C, name="t.c"), AnalysisRequest(), timeout=60
        )
        assert result.wcet_cycles > 0
        client.shutdown()
        for _ in range(100):
            if server.closing and server._serve_thread and not server._serve_thread.is_alive():
                break
            import time

            time.sleep(0.05)
        from repro.server.client import ClientError

        with pytest.raises((ClientError, RemoteError)):
            client.healthz()


# --------------------------------------------------------------------------- #
# CLI --version (part of the subcommand exit-code contract)
# --------------------------------------------------------------------------- #
class TestCliVersion:
    def test_version_on_main_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_version_on_subcommands(self, capsys):
        for command in ("analyze", "check", "sweep", "bench", "report", "serve"):
            with pytest.raises(SystemExit) as excinfo:
                cli_main([command, "--version"])
            assert excinfo.value.code == 0
            assert "repro" in capsys.readouterr().out
