"""Coverage for the two least-tested wcet modules.

* :mod:`repro.wcet.simplex` — the dependency-free two-phase simplex solver:
  optimal, degenerate, unbounded and infeasible problems, equality handling,
  negative right-hand sides, minimisation, and a cross-check against the IPET
  results on a real CFG.
* :mod:`repro.wcet.report` — report construction and text rendering.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.hardware.processor import simple_scalar
from repro.wcet import WCETAnalyzer
from repro.wcet.report import (
    ChallengeReport,
    FunctionReport,
    LoopReport,
    PhaseTiming,
    WCETReport,
)
from repro.wcet.simplex import SimplexResult, solve_lp


class TestSimplexOptimal:
    def test_simple_maximisation(self):
        # max x + y  s.t. x + y <= 4, x <= 2  ->  4
        result = solve_lp([1, 1], [[1, 1], [1, 0]], [4, 2], [], [])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(4.0)

    def test_minimisation(self):
        # min x + y  s.t. x + y >= 3 (as -x - y <= -3)  ->  3
        result = solve_lp([1, 1], [[-1, -1]], [-3], [], [], maximise=False)
        assert result.status == "optimal"
        assert result.objective == pytest.approx(3.0)

    def test_equality_constraints(self):
        # max x  s.t. x + y == 3, x <= 2  ->  x = 2, y = 1
        result = solve_lp([1, 0], [[1, 0]], [2], [[1, 1]], [3])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(2.0)
        assert result.values == pytest.approx([2.0, 1.0])

    def test_negative_rhs_equality_is_normalised(self):
        # max x  s.t. -x == -3  ->  x = 3
        result = solve_lp([1], [], [], [[-1]], [-3])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(3.0)

    def test_zero_objective(self):
        result = solve_lp([0, 0], [[1, 0], [0, 1]], [1, 1], [], [])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(0.0)


class TestSimplexDegenerate:
    def test_redundant_constraints(self):
        # The same constraint three times: degenerate pivots must not cycle
        # (Bland's rule) and the optimum is still found.
        result = solve_lp(
            [1, 1],
            [[1, 1], [1, 1], [1, 1], [1, 0], [0, 1]],
            [2, 2, 2, 1, 1],
            [],
            [],
        )
        assert result.status == "optimal"
        assert result.objective == pytest.approx(2.0)

    def test_degenerate_vertex_zero_rhs(self):
        # A constraint with rhs 0 forces a degenerate basic solution.
        result = solve_lp([2, 1], [[1, -1], [1, 1]], [0, 4], [], [])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(6.0)  # x = y = 2

    def test_classic_cycling_example_terminates(self):
        # Beale's cycling example — terminates only with an anti-cycling rule.
        result = solve_lp(
            [0.75, -150, 0.02, -6],
            [
                [0.25, -60, -1 / 25, 9],
                [0.5, -90, -1 / 50, 3],
                [0, 0, 1, 0],
            ],
            [0, 0, 1],
            [],
            [],
        )
        assert result.status == "optimal"
        assert result.objective == pytest.approx(0.05)


class TestSimplexUnboundedInfeasible:
    def test_unbounded_problem(self):
        # max x with no constraints at all: x can grow without limit.
        result = solve_lp([1], [], [], [], [])
        assert result.status == "unbounded"

    def test_unbounded_direction_in_one_variable(self):
        # y is bounded but x is free to grow.
        result = solve_lp([1, 1], [[0, 1]], [5], [], [])
        assert result.status == "unbounded"

    def test_infeasible_contradictory_bounds(self):
        # x <= 1 and x >= 2 cannot both hold.
        result = solve_lp([1], [[1], [-1]], [1, -2], [], [])
        assert result.status == "infeasible"

    def test_infeasible_equality(self):
        # x + y == -5 with x, y >= 0 is impossible.
        result = solve_lp([1, 1], [], [], [[1, 1]], [-5])
        assert result.status == "infeasible"

    def test_result_dataclass_defaults(self):
        result = SimplexResult(status="infeasible")
        assert result.objective == 0.0
        assert result.values is None


class TestSimplexCrossCheck:
    def test_simplex_backend_matches_auto_backend(self, counter_loop_program):
        """The two ILP backends must agree on a real IPET system."""
        from repro.wcet import AnalysisOptions

        processor = simple_scalar()
        own = WCETAnalyzer(
            counter_loop_program,
            processor,
            options=AnalysisOptions(ilp_backend="simplex"),
        ).analyze()
        auto = WCETAnalyzer(
            counter_loop_program,
            processor,
            options=AnalysisOptions(ilp_backend="auto"),
        ).analyze()
        assert own.wcet_cycles == auto.wcet_cycles
        assert own.bcet_cycles == auto.bcet_cycles


class TestReportRendering:
    def _real_report(self, counter_loop_program) -> WCETReport:
        return WCETAnalyzer(counter_loop_program, simple_scalar()).analyze()

    def test_format_text_contains_key_sections(self, counter_loop_program):
        report = self._real_report(counter_loop_program)
        text = report.format_text()
        assert "WCET analysis of task 'main'" in text
        assert f"WCET bound : {report.wcet_cycles} cycles" in text
        assert f"BCET bound : {report.bcet_cycles} cycles" in text
        assert "Analysis phases (Figure 1):" in text
        assert "Per-function bounds:" in text
        assert "main" in text and "scale" in text
        assert "Loop bounds:" in text

    def test_entry_report_and_function_names(self, counter_loop_program):
        report = self._real_report(counter_loop_program)
        assert report.entry_report.name == "main"
        assert report.function_names() == ["main", "scale"]
        assert report.entry_report.wcet_cycles == report.wcet_cycles

    def test_phase_seconds_aggregates_by_phase(self):
        report = WCETReport(
            entry="main",
            processor="p",
            wcet_cycles=10,
            bcet_cycles=5,
            phases=[
                PhaseTiming("decoding", 0.25),
                PhaseTiming("path analysis", 0.5),
                PhaseTiming("path analysis", 0.25, detail="second run"),
            ],
        )
        totals = report.phase_seconds()
        assert totals["decoding"] == pytest.approx(0.25)
        assert totals["path analysis"] == pytest.approx(0.75)

    def test_mode_and_scenario_shown_in_title(self):
        report = WCETReport(
            entry="task",
            processor="leon2-like",
            wcet_cycles=1,
            bcet_cycles=1,
            functions={"task": FunctionReport(name="task", wcet_cycles=1, bcet_cycles=1)},
            mode="ground",
            error_scenario="single_fault",
        )
        text = report.format_text()
        assert "[mode: ground]" in text
        assert "[error scenario: single_fault]" in text

    def test_challenges_render_in_tiers(self):
        challenges = ChallengeReport()
        challenges.add_tier_one("unresolved indirect call")
        challenges.add_tier_two("loop bounded only by annotation")
        assert not challenges.is_clean
        report = WCETReport(
            entry="t",
            processor="p",
            wcet_cycles=0,
            bcet_cycles=0,
            challenges=challenges,
            annotation_summary={"loop_bounds": 1},
        )
        text = report.format_text()
        assert "Tier-one challenges" in text
        assert "unresolved indirect call" in text
        assert "Tier-two challenges" in text
        assert "loop bounded only by annotation" in text
        assert "Annotations used:" in text

    def test_loop_report_str_for_bounded_and_unbounded(self):
        bounded = LoopReport(function="f", header=0x1000, bound=8, source="analysis")
        unbounded = LoopReport(
            function="f", header=0x2000, bound=None, source="unbounded", irreducible=True
        )
        assert "<= 8 iterations" in str(bounded)
        assert "unbounded" in str(unbounded)
        assert "(irreducible)" in str(unbounded)

    def test_function_report_helpers(self):
        function = FunctionReport(
            name="f",
            wcet_cycles=100,
            bcet_cycles=10,
            block_counts={0x1000: 2, 0x1010: 0, 0x1020: 1},
            loop_reports=[
                LoopReport(function="f", header=0x1000, bound=4, source="analysis"),
                LoopReport(function="f", header=0x1010, bound=None, source="unbounded"),
            ],
        )
        assert function.worst_case_blocks() == [0x1000, 0x1020]
        assert function.total_loop_bound_iterations() == 4

    def test_str_summary(self, counter_loop_program):
        report = self._real_report(counter_loop_program)
        summary = str(report)
        assert "main" in summary and str(report.wcet_cycles) in summary
