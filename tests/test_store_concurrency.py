"""Concurrent multi-process access to the on-disk :class:`SummaryStore`.

The analysis server's worker pool shares one store directory across worker
processes; its advisory per-bucket file locking must make concurrent
``flush()`` cycles lossless — every worker's entries survive, whichever
order the read-merge-write cycles interleave in.
"""

import multiprocessing
import os

import pytest

from repro.cache import SummaryStore

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


# --------------------------------------------------------------------------- #
# Worker functions (module level: picklable for multiprocessing)
# --------------------------------------------------------------------------- #
def _hammer_same_bucket(path, worker, rounds, barrier):
    """Each worker stages unique keys into ONE shared bucket, flushing every
    round, with a barrier maximising read-merge-write interleaving."""
    store = SummaryStore(path)
    for round_no in range(rounds):
        store.put("shared", f"worker{worker}-round{round_no}", (worker, round_no))
        barrier.wait()  # everyone holds a dirty page against the same file...
        store.flush()   # ...then all merge-flush cycles race each other


def _flush_interleaved_buckets(path, worker, barrier):
    """Workers flush alternating bucket sets concurrently (the satellite's
    "two processes flushing interleaved buckets" scenario)."""
    store = SummaryStore(path)
    for bucket in (f"bucket{(worker + offset) % 2}" for offset in range(2)):
        store.put(bucket, f"item-from-{worker}", worker)
    barrier.wait()
    store.flush()


# --------------------------------------------------------------------------- #
class TestConcurrentFlush:
    WORKERS = 4
    ROUNDS = 6

    def _run(self, target, path, extra_args):
        barrier = multiprocessing.Barrier(self.WORKERS)
        processes = [
            multiprocessing.Process(
                target=target, args=(path, worker, *extra_args, barrier)
            )
            for worker in range(self.WORKERS)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        return SummaryStore(path)

    def test_same_bucket_hammer_loses_no_entries(self, tmp_path):
        """N processes repeatedly merge-flushing ONE bucket keep every entry.

        Without the inter-process lock around the read-merge-write cycle,
        two workers could both re-read the same baseline and the second
        rename would drop the first worker's newest entries.
        """
        store = self._run(_hammer_same_bucket, str(tmp_path), (self.ROUNDS,))
        expected = {
            f"worker{worker}-round{round_no}"
            for worker in range(self.WORKERS)
            for round_no in range(self.ROUNDS)
        }
        present = {
            key for key in expected if store.get("shared", key) is not None
        }
        assert present == expected, (
            f"lost {len(expected) - len(present)} entries under concurrent "
            f"flush: {sorted(expected - present)[:5]}..."
        )

    def test_interleaved_buckets_across_processes(self, tmp_path):
        """Two bucket files written by alternating processes stay complete."""
        store = self._run(_flush_interleaved_buckets, str(tmp_path), ())
        for bucket in ("bucket0", "bucket1"):
            for worker in range(self.WORKERS):
                assert store.get(bucket, f"item-from-{worker}") == worker

    def test_values_survive_concurrent_flush_bitwise(self, tmp_path):
        """Entries read back equal what each worker staged (no torn pickles)."""
        store = self._run(_hammer_same_bucket, str(tmp_path), (2,))
        for worker in range(self.WORKERS):
            for round_no in range(2):
                assert store.get("shared", f"worker{worker}-round{round_no}") == (
                    worker,
                    round_no,
                )


class TestLockMechanics:
    def test_lock_sidecar_is_not_a_bucket(self, tmp_path):
        """The ``.lock`` sidecar must not count as (or corrupt) a bucket."""
        store = SummaryStore(str(tmp_path))
        store.put("b", "k", 1)
        store.flush()
        names = sorted(os.listdir(tmp_path))
        assert "b.pkl" in names
        assert "b.lock" in names, "flush must take the advisory bucket lock"
        assert len(store) == 1  # .lock files are not buckets

    def test_two_instances_interleave_without_loss(self, tmp_path):
        """In-process interleaving (two store objects, one directory)."""
        a = SummaryStore(str(tmp_path))
        b = SummaryStore(str(tmp_path))
        a.put("b", "from-a-1", 1)
        a.flush()
        b.put("b", "from-b-1", 2)
        b.flush()  # merges a's entry despite b's stale page
        a.put("b", "from-a-2", 3)
        a.flush()  # merges b's entry despite a's stale sig
        fresh = SummaryStore(str(tmp_path))
        assert fresh.get("b", "from-a-1") == 1
        assert fresh.get("b", "from-b-1") == 2
        assert fresh.get("b", "from-a-2") == 3

    def test_flush_reentrant_after_lock(self, tmp_path):
        """flush() stays idempotent: staged entries clear, lock released."""
        store = SummaryStore(str(tmp_path))
        store.put("b", "k", "v")
        store.flush()
        writes = store.file_writes
        store.flush()  # nothing staged: no second write, no deadlock
        assert store.file_writes == writes


class TestCorruptionQuarantine:
    @staticmethod
    def _seed(tmp_path):
        store = SummaryStore(str(tmp_path))
        store.put("b", "k", "v")
        store.flush()
        return store

    def test_garbage_bucket_is_quarantined_not_fatal(self, tmp_path):
        """A corrupt pickle reads as a miss, is counted, and moves aside."""
        self._seed(tmp_path)
        (tmp_path / "b.pkl").write_bytes(b"\x80\x05not a pickle at all")
        fresh = SummaryStore(str(tmp_path))
        assert fresh.get("b", "k") is None
        assert fresh.corruptions == 1
        names = sorted(os.listdir(tmp_path))
        assert "b.pkl" not in names
        quarantined = [name for name in names if name.startswith("b.corrupt-")]
        assert len(quarantined) == 1
        # Quarantined files are not buckets: they never count or get re-read.
        assert len(fresh) == 0
        assert fresh.get("b", "k") is None
        assert fresh.corruptions == 1  # the page cache holds; no re-quarantine

    def test_truncated_bucket_is_quarantined(self, tmp_path):
        """A torn write (valid prefix, cut mid-stream) also quarantines."""
        self._seed(tmp_path)
        data = (tmp_path / "b.pkl").read_bytes()
        (tmp_path / "b.pkl").write_bytes(data[: max(len(data) // 3, 1)])
        fresh = SummaryStore(str(tmp_path))
        assert fresh.get("b", "k") is None
        assert fresh.corruptions == 1

    def test_non_dict_pickle_is_quarantined(self, tmp_path):
        """A well-formed pickle of the wrong shape is corruption too."""
        import pickle

        self._seed(tmp_path)
        (tmp_path / "b.pkl").write_bytes(pickle.dumps(["not", "a", "dict"]))
        fresh = SummaryStore(str(tmp_path))
        assert fresh.get("b", "k") is None
        assert fresh.corruptions == 1

    def test_flush_recreates_bucket_after_quarantine(self, tmp_path):
        """The store heals: the next flush rebuilds the bucket from scratch."""
        self._seed(tmp_path)
        (tmp_path / "b.pkl").write_bytes(b"garbage")
        store = SummaryStore(str(tmp_path))
        assert store.get("b", "k") is None  # quarantines
        store.put("b", "k2", "v2")
        store.flush()
        healed = SummaryStore(str(tmp_path))
        assert healed.get("b", "k2") == "v2"
        assert healed.corruptions == 0
        assert len(healed) == 1

    def test_missing_file_is_a_plain_miss(self, tmp_path):
        """Absence is not corruption: no counter, no quarantine artefacts."""
        store = SummaryStore(str(tmp_path))
        assert store.get("nope", "k") is None
        assert store.corruptions == 0
        assert os.listdir(tmp_path) == []
