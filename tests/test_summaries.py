"""Tests for the cross-analysis memoization layer (PR 3).

Covers the content-addressed function-summary cache (both tiers), the shared
mode pipeline of ``analyze_all_modes``, the parallel batch API, the sweep's
``keep_reports`` handling, the ``ContextCache`` accounting/index fixes, and
the ``max_contexts_per_function`` capping behaviour — with the overarching
invariant that cached, shared and parallel paths are bit-identical to the
cold serial path.
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.summaries import SummaryCache, merge_stats
from repro.analysis.value import ValueAnalysis
from repro.annotations import AnnotationSet
from repro.cache import SummaryStore, configure, configured_store
from repro.hardware.processor import leon2_like, simple_scalar
from repro.minic import compile_source
from repro.testing.oracle import OracleConfig
from repro.testing.sweep import run_sweep
from repro.wcet import (
    AnalysisOptions,
    AnalysisRequest,
    WCETAnalyzer,
    analyze_batch,
)
from repro.wcet.contexts import CallContext, ContextCache
from repro.workloads import flight_control, message_handler


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def _report_fingerprint(report):
    """Everything that must be identical between cached and fresh analyses."""
    return {
        "wcet": report.wcet_cycles,
        "bcet": report.bcet_cycles,
        "functions": {
            name: (
                fr.wcet_cycles,
                fr.bcet_cycles,
                sorted((lr.header, lr.bound, lr.source) for lr in fr.loop_reports),
                sorted(fr.block_counts.items()),
                fr.icache_summary,
                fr.dcache_summary,
                sorted(fr.unreachable_blocks),
                fr.context,
            )
            for name, fr in report.functions.items()
        },
        "tier_one": report.challenges.tier_one,
        "tier_two": sorted(report.challenges.tier_two),
        "annotations": report.annotation_summary,
    }


def _flight_analyzer(store=None, cache=None, options=None):
    return WCETAnalyzer(
        flight_control.program(),
        leon2_like(),
        annotations=flight_control.annotations(),
        options=options,
        summary_store=store,
        summary_cache=cache,
    )


# --------------------------------------------------------------------------- #
# SummaryStore
# --------------------------------------------------------------------------- #
class TestSummaryStore:
    def test_roundtrip_across_instances(self, tmp_path):
        store = SummaryStore(str(tmp_path))
        store.put("bucket", "item", {"x": 1})
        store.flush()
        fresh = SummaryStore(str(tmp_path))
        assert fresh.get("bucket", "item") == {"x": 1}
        assert fresh.get("bucket", "missing") is None
        assert fresh.get("other", "item") is None

    def test_staged_entries_visible_before_flush(self, tmp_path):
        store = SummaryStore(str(tmp_path))
        store.put("bucket", "item", 42)
        assert store.get("bucket", "item") == 42

    def test_corrupt_bucket_reads_as_miss(self, tmp_path):
        store = SummaryStore(str(tmp_path))
        store.put("bucket", "item", 42)
        store.flush()
        bucket_file = next(tmp_path.glob("*.pkl"))
        bucket_file.write_bytes(b"not a pickle")
        fresh = SummaryStore(str(tmp_path))
        assert fresh.get("bucket", "item") is None

    def test_flush_merges_with_concurrent_writer(self, tmp_path):
        first = SummaryStore(str(tmp_path))
        second = SummaryStore(str(tmp_path))
        first.put("bucket", "a", 1)
        second.put("bucket", "b", 2)
        first.flush()
        second.flush()
        fresh = SummaryStore(str(tmp_path))
        assert fresh.get("bucket", "a") == 1
        assert fresh.get("bucket", "b") == 2

    def test_configure_global_store(self, tmp_path):
        try:
            assert configured_store() is None
            store = configure(str(tmp_path))
            assert configured_store() is store
        finally:
            configure(None)
        assert configured_store() is None


# --------------------------------------------------------------------------- #
# ContextCache accounting and index (satellite fixes)
# --------------------------------------------------------------------------- #
class TestContextCache:
    def test_miss_counted_at_lookup_time(self):
        cache = ContextCache()
        context = CallContext.default("f")
        # Probing an absent context repeatedly is repeatedly a miss.
        assert cache.get(context) is None
        assert cache.get(context) is None
        assert (cache.hits, cache.misses) == (0, 2)
        cache.put(context, "report")
        assert cache.get(context) == "report"
        assert (cache.hits, cache.misses) == (1, 2)
        assert cache.hit_rate == pytest.approx(1 / 3)

    def test_peek_does_not_touch_counters(self):
        cache = ContextCache()
        context = CallContext.default("f")
        assert cache.peek(context) is None
        cache.put(context, "report")
        assert cache.peek(context) == "report"
        assert (cache.hits, cache.misses) == (0, 0)

    def test_contexts_for_uses_per_function_index(self):
        cache = ContextCache()
        f_default = CallContext.default("f")
        f_ctx = CallContext(function="f", argument_summary=(("r3", 1, 2),))
        g_default = CallContext.default("g")
        cache.put(f_default, "a")
        cache.put(f_ctx, "b")
        cache.put(g_default, "c")
        assert cache.contexts_for("f") == {f_default: "a", f_ctx: "b"}
        assert cache.contexts_for("g") == {g_default: "c"}
        assert cache.contexts_for("h") == {}
        assert len(cache) == 3


# --------------------------------------------------------------------------- #
# Warm-vs-cold identity (the tentpole invariant)
# --------------------------------------------------------------------------- #
class TestSummaryCacheIdentity:
    def test_warm_reports_identical_to_cold(self, tmp_path):
        cold_analyzer = _flight_analyzer(store=SummaryStore(str(tmp_path)))
        cold = cold_analyzer.analyze_all_modes()
        assert cold_analyzer.summaries.stats()["tier2_hits"] == 0

        warm_analyzer = _flight_analyzer(store=SummaryStore(str(tmp_path)))
        warm = warm_analyzer.analyze_all_modes()
        stats = warm_analyzer.summaries.stats()
        assert stats["tier2_hits"] > 0
        assert stats["puts"] == 0  # nothing was recomputed

        baseline_analyzer = _flight_analyzer()  # no cache at all
        for mode in cold:
            baseline = baseline_analyzer.analyze(mode=mode)
            assert _report_fingerprint(cold[mode]) == _report_fingerprint(baseline)
            assert _report_fingerprint(warm[mode]) == _report_fingerprint(baseline)

    def test_warm_message_handler_identical(self, tmp_path):
        def build(store):
            return WCETAnalyzer(
                message_handler.program(),
                leon2_like(),
                annotations=message_handler.annotations(),
                summary_store=store,
            )

        cold = build(SummaryStore(str(tmp_path))).analyze()
        warm_analyzer = build(SummaryStore(str(tmp_path)))
        warm = warm_analyzer.analyze()
        assert warm_analyzer.summaries.stats()["tier2_hits"] > 0
        assert _report_fingerprint(warm) == _report_fingerprint(cold)

    def test_different_processor_never_shares_summaries(self, tmp_path):
        store = SummaryStore(str(tmp_path))
        leon = _flight_analyzer(store=store).analyze()
        simple_analyzer = WCETAnalyzer(
            flight_control.program(),
            simple_scalar(),
            annotations=flight_control.annotations(),
            summary_store=SummaryStore(str(tmp_path)),
        )
        assert simple_analyzer.summaries.stats()["tier2_hits"] == 0
        simple = simple_analyzer.analyze()
        assert simple_analyzer.summaries.stats()["tier2_hits"] == 0
        assert simple.wcet_cycles != leon.wcet_cycles

    def test_summaries_survive_pickling(self, tmp_path):
        store = SummaryStore(str(tmp_path))
        _flight_analyzer(store=store).analyze()
        store.flush()
        bucket_file = next(tmp_path.glob("*.pkl"))
        payload = pickle.loads(bucket_file.read_bytes())
        assert payload  # at least one summary, unpickles cleanly


# --------------------------------------------------------------------------- #
# Shared mode pipeline
# --------------------------------------------------------------------------- #
class TestSharedModePipeline:
    def test_value_analysis_runs_once_across_modes(self, monkeypatch):
        runs = []
        original = ValueAnalysis.run

        def counting_run(self):
            runs.append(self.cfg.function_name)
            return original(self)

        monkeypatch.setattr(ValueAnalysis, "run", counting_run)

        _flight_analyzer().analyze_all_modes()
        shared_runs = list(runs)

        runs.clear()
        analyzer = _flight_analyzer()
        for mode in [None] + analyzer.annotations.mode_names():
            _flight_analyzer().analyze(mode=mode)
        independent_runs = list(runs)

        # The shared pipeline re-runs a function's loop/value phase only when
        # a mode changes its entry values; independent runs repeat everything.
        assert len(shared_runs) == len(set(shared_runs))
        assert len(shared_runs) < len(independent_runs)

    def test_decoding_timed_once(self):
        reports = _flight_analyzer().analyze_all_modes()
        decode_seconds = [
            report.phase_seconds().get("decoding", 0.0)
            for report in reports.values()
        ]
        # Every mode still reports the phase; only the first one paid for it.
        assert all(s >= 0.0 for s in decode_seconds)
        details = [
            timing.detail
            for report in reports.values()
            for timing in report.phases
            if timing.phase == "decoding"
        ]
        assert all("shared across modes" in detail for detail in details)


# --------------------------------------------------------------------------- #
# Batch API
# --------------------------------------------------------------------------- #
class TestAnalyzeBatch:
    def _requests(self):
        return [
            AnalysisRequest(
                flight_control.program(),
                leon2_like(),
                annotations=flight_control.annotations(),
                all_modes=True,
                label="fc",
            ),
            AnalysisRequest(
                message_handler.program(),
                simple_scalar(),
                annotations=message_handler.annotations(),
                label="mh",
            ),
            AnalysisRequest(
                message_handler.program(),
                leon2_like(),
                annotations=message_handler.annotations(),
                label="mh-leon",
            ),
        ]

    def test_parallel_matches_serial(self, tmp_path):
        serial = analyze_batch(self._requests(), jobs=1)
        parallel = analyze_batch(
            self._requests(), jobs=2, cache_dir=str(tmp_path / "store")
        )
        assert len(serial.results) == len(parallel.results) == 3
        for left, right in zip(serial.results, parallel.results):
            if isinstance(left, dict):
                assert set(left) == set(right)
                for mode in left:
                    assert _report_fingerprint(left[mode]) == _report_fingerprint(
                        right[mode]
                    )
            else:
                assert _report_fingerprint(left) == _report_fingerprint(right)

    def test_serial_batch_shares_cache_between_requests(self):
        requests = [
            AnalysisRequest(
                message_handler.program(),
                simple_scalar(),
                annotations=message_handler.annotations(),
            )
            for _ in range(3)
        ]
        batch = analyze_batch(requests, jobs=1)
        assert batch.cache_stats["tier1_hits"] > 0
        assert len(batch.reports()) == 3
        bounds = {(r.wcet_cycles, r.bcet_cycles) for r in batch.reports()}
        assert len(bounds) == 1

    def test_parallel_batch_rejects_inprocess_cache(self, tmp_path):
        with pytest.raises(ValueError, match="cache_dir"):
            analyze_batch(self._requests(), jobs=2, summary_cache=SummaryCache())

    def test_parallel_batch_honours_global_store(self, tmp_path):
        store_dir = tmp_path / "global-store"
        try:
            configure(str(store_dir))
            analyze_batch(self._requests()[1:], jobs=2)
        finally:
            configure(None)
        assert list(store_dir.glob("*.pkl")), "workers did not persist summaries"

    def test_warm_batch_run_hits_persistent_store(self, tmp_path):
        cache_dir = str(tmp_path / "store")
        analyze_batch(self._requests(), jobs=1, cache_dir=cache_dir)
        warm = analyze_batch(self._requests(), jobs=1, cache_dir=cache_dir)
        assert warm.cache_stats["tier2_hits"] > 0
        assert warm.cache_stats["puts"] == 0


# --------------------------------------------------------------------------- #
# Sweep integration (keep_reports satellite + cached sweeps)
# --------------------------------------------------------------------------- #
class TestSweepIntegration:
    SEEDS = range(1, 5)

    def test_keep_reports_parallel_ships_slim_reports(self):
        config = OracleConfig(max_input_vectors=2)
        serial = run_sweep(self.SEEDS, config, jobs=1, keep_reports=True)
        parallel = run_sweep(self.SEEDS, config, jobs=2, keep_reports=True)
        assert serial.ok and parallel.ok
        for s_result, p_result in zip(serial.results, parallel.results):
            assert p_result.report is not None, "keep_reports was dropped"
            assert s_result.report is not None
            assert (
                p_result.report.wcet_cycles,
                p_result.report.bcet_cycles,
            ) == (s_result.report.wcet_cycles, s_result.report.bcet_cycles)
            # Slim form: per-function bounds survive, block tables do not.
            assert set(p_result.report.functions) == set(s_result.report.functions)
            for fr in p_result.report.functions.values():
                assert fr.block_times == {}

    def test_reports_dropped_by_default(self):
        parallel = run_sweep(self.SEEDS, OracleConfig(max_input_vectors=2), jobs=2)
        assert all(result.report is None for result in parallel.results)

    def test_cached_sweep_identical_and_hits(self, tmp_path):
        config_cold = OracleConfig(max_input_vectors=2, cache_dir=str(tmp_path / "s"))
        cold = run_sweep(self.SEEDS, config_cold, jobs=1)
        warm = run_sweep(self.SEEDS, config_cold, jobs=1)
        assert cold.ok and warm.ok
        assert warm.bounds_by_case() == cold.bounds_by_case()
        assert warm.cache_stats()["tier2_hits"] > 0
        assert warm.cache_stats()["puts"] == 0

    def test_parallel_cached_sweep_matches(self, tmp_path):
        config = OracleConfig(max_input_vectors=2, cache_dir=str(tmp_path / "s"))
        baseline = run_sweep(self.SEEDS, OracleConfig(max_input_vectors=2), jobs=1)
        cold = run_sweep(self.SEEDS, config, jobs=2)
        warm = run_sweep(self.SEEDS, config, jobs=2)
        assert cold.bounds_by_case() == baseline.bounds_by_case()
        assert warm.bounds_by_case() == baseline.bounds_by_case()


# --------------------------------------------------------------------------- #
# max_contexts_per_function capping (satellite test coverage)
# --------------------------------------------------------------------------- #
_CAP_SOURCE = """
int work(int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
        s = s + i;
        i = i + 1;
    }
    return s;
}

int main(void) {
    int total = 0;
    total = total + work(4);
    total = total + work(8);
    total = total + work(16);
    return total;
}
"""


class TestContextCapping:
    def _analyze(self, max_contexts, store=None):
        program = compile_source(_CAP_SOURCE)
        annotations = AnnotationSet().add_argument_range("work", "r3", 0, 16)
        options = AnalysisOptions(max_contexts_per_function=max_contexts)
        return WCETAnalyzer(
            program,
            simple_scalar(),
            annotations=annotations,
            options=options,
            summary_store=store,
        ).analyze()

    @pytest.mark.parametrize("cap", [0, 1, 16])
    def test_capping_is_deterministic(self, cap):
        first = self._analyze(cap)
        second = self._analyze(cap)
        assert _report_fingerprint(first) == _report_fingerprint(second)

    @pytest.mark.parametrize("cap", [0, 1, 16])
    def test_cached_equals_fresh_under_cap(self, cap, tmp_path):
        store_dir = str(tmp_path / f"cap{cap}")
        cold = self._analyze(cap, store=SummaryStore(store_dir))
        warm = self._analyze(cap, store=SummaryStore(store_dir))
        assert _report_fingerprint(warm) == _report_fingerprint(cold)

    def test_cap_zero_falls_back_to_default_context(self):
        report = self._analyze(0)
        # Context-insensitive: the callee is analysed once, under the
        # annotation-derived default context, and the bound is the widest.
        assert report.functions["work"].context == "work[*]"
        assert report.wcet_cycles >= self._analyze(16).wcet_cycles

    def test_cap_reached_is_sound_but_coarser(self):
        capped = self._analyze(1)
        uncapped = self._analyze(16)
        # The capped analysis may only be more pessimistic, never less.
        assert capped.wcet_cycles >= uncapped.wcet_cycles
        assert capped.bcet_cycles <= uncapped.bcet_cycles

    def test_binding_cap_subtrees_not_cached_and_stay_identical(self, tmp_path):
        # The adversarial corpus case drives one callee past the default cap
        # of 16 contexts, so the cap becomes binding mid-run — such subtrees
        # must not be summarised (their outcome depends on run-global
        # population), and warm must still equal cold.
        from repro.testing import load_corpus

        case = next(
            c for c in load_corpus() if c.name == "adversarial-deep-call-chain"
        )
        rendered = case.rendered()

        def analyze(store):
            program = compile_source(rendered.source, entry=case.entry)
            return WCETAnalyzer(
                program,
                simple_scalar(),
                annotations=rendered.annotations,
                summary_store=store,
            ).analyze(entry=case.entry)

        store_dir = str(tmp_path / "deep")
        cold = analyze(SummaryStore(store_dir))
        warm = analyze(SummaryStore(store_dir))
        assert _report_fingerprint(warm) == _report_fingerprint(cold)

    def test_warm_run_with_different_entry_matches_cold(self, tmp_path):
        # A summary recorded during an entry=main run must replay exactly
        # into a run with a different entry — including context
        # registrations its subtree only *consulted* (context-cache hits),
        # which a cold run of that entry would register itself.
        source = _CAP_SOURCE + (
            "\nint side(void) {\n"
            "    return work(8) + work(4);\n"
            "}\n"
        )
        annotations = AnnotationSet().add_argument_range("work", "r3", 0, 16)

        def analyze(entry, store):
            return WCETAnalyzer(
                compile_source(source, entry=entry),
                simple_scalar(),
                annotations=annotations,
                summary_store=store,
            ).analyze(entry=entry)

        store_dir = str(tmp_path / "entries")
        analyze("main", SummaryStore(store_dir))  # records main + subtrees
        warm_side = analyze("side", SummaryStore(store_dir))
        cold_side = analyze("side", None)
        assert _report_fingerprint(warm_side) == _report_fingerprint(cold_side)

    def test_oracle_ignores_global_default_store(self, tmp_path):
        # OracleConfig(cache_dir=None) promises no persistent caching, even
        # when a process-global default store is configured.
        from repro.testing.oracle import DifferentialOracle
        from repro.testing.generator import generate_case

        try:
            configure(str(tmp_path / "global"))
            oracle = DifferentialOracle(OracleConfig(max_input_vectors=2))
            result = oracle.check(generate_case(1))
        finally:
            configure(None)
        assert result.ok
        assert result.cache_stats["tier2_hits"] == 0
        assert result.cache_stats["tier2_misses"] == 0
        assert not list((tmp_path / "global").glob("*.pkl"))

    def test_distinct_summary_keys_per_option_value(self, tmp_path):
        # Caps are part of the cache key: a store filled with cap=16 results
        # must never serve a cap=0 analysis.
        store_dir = str(tmp_path / "shared")
        self._analyze(16, store=SummaryStore(store_dir))
        analyzer_program = compile_source(_CAP_SOURCE)
        annotations = AnnotationSet().add_argument_range("work", "r3", 0, 16)
        analyzer = WCETAnalyzer(
            analyzer_program,
            simple_scalar(),
            annotations=annotations,
            options=AnalysisOptions(max_contexts_per_function=0),
            summary_store=SummaryStore(store_dir),
        )
        analyzer.analyze()
        assert analyzer.summaries.stats()["tier2_hits"] == 0


# --------------------------------------------------------------------------- #
# merge_stats helper
# --------------------------------------------------------------------------- #
def test_merge_stats_accumulates():
    total = {}
    merge_stats(total, {"a": 1, "b": 2})
    merge_stats(total, {"a": 3, "c": 4})
    assert total == {"a": 4, "b": 2, "c": 4}
