"""Tests for the ILP solver, the IPET formulation and the WCET analyzer."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annotations import AnnotationSet
from repro.errors import (
    CFGError,
    InfeasibleILPError,
    UnboundedILPError,
    UnboundedLoopError,
)
from repro.cfg import find_loops, reconstruct_cfg
from repro.hardware import TraceTimer, leon2_like, simple_scalar
from repro.ir import Interpreter, parse_assembly
from repro.wcet import (
    AnalysisOptions,
    ILPProblem,
    IPETBuilder,
    LinearExpression,
    WCETAnalyzer,
)
from repro.wcet.ipet import ResolvedFlowConstraint


# --------------------------------------------------------------------------- #
# ILP solver
# --------------------------------------------------------------------------- #
def _knapsack_bruteforce(weights, values, capacity):
    best = 0
    n = len(weights)
    for mask in itertools.product([0, 1], repeat=n):
        weight = sum(w * m for w, m in zip(weights, mask))
        if weight <= capacity:
            best = max(best, sum(v * m for v, m in zip(values, mask)))
    return best


class TestILP:
    @pytest.mark.parametrize("backend", ["scipy", "simplex"])
    def test_simple_maximisation(self, backend):
        problem = ILPProblem("t")
        problem.add_variable("x")
        problem.add_variable("y")
        problem.set_objective_coefficient("x", 3)
        problem.set_objective_coefficient("y", 2)
        problem.add_constraint(LinearExpression({"x": 1, "y": 1}), "<=", 4)
        problem.add_constraint(LinearExpression({"x": 1}), "<=", 2)
        solution = problem.solve(backend=backend)
        assert solution.objective == pytest.approx(10)
        assert solution.int_value("x") == 2 and solution.int_value("y") == 2

    @pytest.mark.parametrize("backend", ["scipy", "simplex"])
    def test_equality_constraints(self, backend):
        problem = ILPProblem("t")
        problem.add_variable("a")
        problem.add_variable("b")
        problem.set_objective_coefficient("a", 1)
        problem.set_objective_coefficient("b", 1)
        problem.add_constraint(LinearExpression({"a": 2, "b": 2}), "<=", 5)
        problem.add_constraint(LinearExpression({"a": 1, "b": -1}), "==", 0)
        solution = problem.solve(backend=backend)
        assert solution.objective == pytest.approx(2)

    @pytest.mark.parametrize("backend", ["scipy", "simplex"])
    def test_infeasible_detected(self, backend):
        problem = ILPProblem("t")
        problem.add_variable("x")
        problem.set_objective_coefficient("x", 1)
        problem.add_constraint(LinearExpression({"x": 1}), ">=", 5)
        problem.add_constraint(LinearExpression({"x": 1}), "<=", 2)
        with pytest.raises(InfeasibleILPError):
            problem.solve(backend=backend)

    @pytest.mark.parametrize("backend", ["scipy", "simplex"])
    def test_unbounded_detected(self, backend):
        problem = ILPProblem("t")
        problem.add_variable("x")
        problem.set_objective_coefficient("x", 1)
        with pytest.raises(UnboundedILPError):
            problem.solve(backend=backend, integer=False)

    @pytest.mark.parametrize("backend", ["scipy", "simplex"])
    def test_minimisation(self, backend):
        problem = ILPProblem("t", maximise=False)
        problem.add_variable("x")
        problem.set_objective_coefficient("x", 4)
        problem.add_constraint(LinearExpression({"x": 1}), ">=", 3)
        assert problem.solve(backend=backend).objective == pytest.approx(12)

    @given(
        weights=st.lists(st.integers(1, 9), min_size=2, max_size=5),
        values=st.lists(st.integers(1, 9), min_size=2, max_size=5),
        capacity=st.integers(1, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_knapsack_matches_bruteforce(self, weights, values, capacity):
        n = min(len(weights), len(values))
        weights, values = weights[:n], values[:n]
        problem = ILPProblem("knapsack")
        expression = LinearExpression()
        for index in range(n):
            name = f"x{index}"
            problem.add_variable(name, upper=1)
            problem.set_objective_coefficient(name, values[index])
            expression.add_term(name, weights[index])
        problem.add_constraint(expression, "<=", capacity)
        solution = problem.solve(backend="scipy")
        assert round(solution.objective) == _knapsack_bruteforce(weights, values, capacity)

    def test_backends_agree_on_lp_relaxation(self):
        problem = ILPProblem("t")
        problem.add_variable("x")
        problem.add_variable("y")
        problem.set_objective_coefficient("x", 5)
        problem.set_objective_coefficient("y", 4)
        problem.add_constraint(LinearExpression({"x": 6, "y": 4}), "<=", 24)
        problem.add_constraint(LinearExpression({"x": 1, "y": 2}), "<=", 6)
        a = problem.solve(backend="scipy", integer=False).objective
        b = problem.solve(backend="simplex", integer=False).objective
        assert a == pytest.approx(b, rel=1e-6)


# --------------------------------------------------------------------------- #
# IPET
# --------------------------------------------------------------------------- #
LOOP_WITH_BRANCH = """
.func main
    mov r4, 0
loop:
    slt r6, r4, 5
    bf r6, cheap
    mov r7, 1
    br join
cheap:
    mov r7, 2
join:
    add r4, r4, 1
    slt r5, r4, 10
    bt r5, loop
    halt
"""


class TestIPET:
    def _build(self):
        program = parse_assembly(LOOP_WITH_BRANCH)
        cfg, _ = reconstruct_cfg(program, "main")
        loops = find_loops(cfg)
        weights = {block: 10 for block in cfg.node_ids()}
        bounds = {loops.loops[0].header: 10}
        return cfg, loops, weights, bounds

    def test_entry_block_executes_once(self):
        cfg, loops, weights, bounds = self._build()
        result = IPETBuilder(cfg, loops).solve(weights, bounds)
        assert result.block_counts[cfg.entry_block] == 1

    def test_loop_header_respects_bound(self):
        cfg, loops, weights, bounds = self._build()
        result = IPETBuilder(cfg, loops).solve(weights, bounds)
        header = loops.loops[0].header
        assert result.block_counts[header] <= 11

    def test_missing_loop_bound_is_unbounded(self):
        cfg, loops, weights, _ = self._build()
        with pytest.raises(UnboundedILPError):
            IPETBuilder(cfg, loops).solve(weights, {})

    def test_infeasible_block_constraint(self):
        cfg, loops, weights, bounds = self._build()
        branch_block = cfg.node_ids()[2]
        with_block = IPETBuilder(cfg, loops).solve(weights, bounds)
        without_block = IPETBuilder(cfg, loops).solve(
            weights, bounds, infeasible_blocks=[branch_block]
        )
        assert without_block.block_counts[branch_block] == 0
        assert without_block.bound_cycles <= with_block.bound_cycles

    def test_flow_constraint_caps_block_count(self):
        cfg, loops, weights, bounds = self._build()
        branch_block = cfg.node_ids()[2]
        constraint = ResolvedFlowConstraint(
            terms=((branch_block, 1),), relation="<=", bound=3, name="cap"
        )
        result = IPETBuilder(cfg, loops).solve(
            weights, bounds, flow_constraints=[constraint]
        )
        assert result.block_counts[branch_block] <= 3

    def test_bcet_minimisation_is_below_wcet(self):
        cfg, loops, weights, bounds = self._build()
        builder = IPETBuilder(cfg, loops)
        wcet = builder.solve(weights, bounds, maximise=True)
        bcet = builder.solve(weights, bounds, maximise=False)
        assert bcet.bound_cycles <= wcet.bound_cycles

    def test_worst_case_path_blocks_have_positive_counts(self):
        cfg, loops, weights, bounds = self._build()
        result = IPETBuilder(cfg, loops).solve(weights, bounds)
        assert cfg.entry_block in result.worst_case_blocks()


# --------------------------------------------------------------------------- #
# WCET analyzer (end to end)
# --------------------------------------------------------------------------- #
class TestWCETAnalyzer:
    def test_bound_is_sound_for_counter_loop(self, counter_loop_program):
        for processor in (simple_scalar(), leon2_like()):
            report = WCETAnalyzer(counter_loop_program, processor).analyze()
            result = Interpreter(counter_loop_program).run()
            observed = TraceTimer(processor, counter_loop_program).time(result.trace)
            assert report.bcet_cycles <= observed.cycles <= report.wcet_cycles

    def test_report_contains_all_reachable_functions(self, counter_loop_program):
        report = WCETAnalyzer(counter_loop_program, simple_scalar()).analyze()
        assert set(report.functions) == {"main", "scale"}

    def test_loop_bound_appears_in_report(self, counter_loop_program):
        report = WCETAnalyzer(counter_loop_program, simple_scalar()).analyze()
        loop_reports = report.loop_reports()
        assert loop_reports and loop_reports[0].bound == 8

    def test_phase_timings_cover_figure1(self, counter_loop_program):
        report = WCETAnalyzer(counter_loop_program, simple_scalar()).analyze()
        phases = {timing.phase for timing in report.phases}
        assert {"decoding", "loop/value analysis", "cache analysis",
                "pipeline analysis", "path analysis"} <= phases

    def test_unbounded_loop_raises_with_annotation_hint(self):
        asm = (
            ".func main params=1\n    mov r4, 0\nloop:\n    add r4, r4, 1\n"
            "    slt r5, r4, r3\n    bt r5, loop\n    halt\n"
        )
        program = parse_assembly(asm)
        with pytest.raises(UnboundedLoopError) as excinfo:
            WCETAnalyzer(program, simple_scalar()).analyze()
        assert "loopbound" in str(excinfo.value)

    def test_loop_bound_annotation_enables_analysis(self):
        asm = (
            ".func main params=1\n    mov r4, 0\nloop:\n    add r4, r4, 1\n"
            "    slt r5, r4, r3\n    bt r5, loop\n    halt\n"
        )
        program = parse_assembly(asm)
        annotations = AnnotationSet().add_loop_bound("main", "loop", 20)
        report = WCETAnalyzer(program, simple_scalar(), annotations=annotations).analyze()
        assert report.wcet_cycles > 0
        assert report.loop_reports()[0].source == "annotation"

    def test_argument_range_annotation_bounds_loop_automatically(self):
        asm = (
            ".func main params=1\n    mov r4, 0\nloop:\n    add r4, r4, 1\n"
            "    slt r5, r4, r3\n    bt r5, loop\n    halt\n"
        )
        program = parse_assembly(asm)
        annotations = AnnotationSet().add_argument_range("main", "r3", 0, 20)
        report = WCETAnalyzer(program, simple_scalar(), annotations=annotations).analyze()
        assert report.loop_reports()[0].source == "analysis"
        assert report.loop_reports()[0].bound == 20

    def test_infeasible_annotation_tightens_bound(self):
        asm = (
            ".data flag 4\n"
            ".func main\n    la r6, flag\n    load r5, [r6 + 0]\n    bf r5, skip\n"
            "expensive:\n    mov r4, 0\nloop:\n    add r4, r4, 1\n    slt r7, r4, 50\n"
            "    bt r7, loop\nskip:\n    halt\n"
        )
        program = parse_assembly(asm)
        plain = WCETAnalyzer(program, simple_scalar()).analyze()
        annotations = AnnotationSet().add_infeasible("main", "expensive")
        excluded = WCETAnalyzer(program, simple_scalar(), annotations=annotations).analyze()
        assert excluded.wcet_cycles < plain.wcet_cycles

    def test_recursion_without_annotation_is_rejected(self):
        asm = (
            ".func main\n    call fib\n    halt\n"
            ".func fib\n    call fib\n    ret\n"
        )
        program = parse_assembly(asm)
        with pytest.raises(CFGError):
            WCETAnalyzer(program, simple_scalar()).analyze()

    def test_recursion_with_annotation_scales_with_depth(self):
        asm = (
            ".func main\n    call count\n    halt\n"
            ".func count params=1\n    sub r3, r3, 1\n    sgt r4, r3, 0\n"
            "    bf r4, done\n    call count\ndone:\n    ret\n"
        )
        program = parse_assembly(asm)
        shallow = WCETAnalyzer(
            program, simple_scalar(),
            annotations=AnnotationSet().add_recursion_bound("count", 2),
        ).analyze()
        deep = WCETAnalyzer(
            program, simple_scalar(),
            annotations=AnnotationSet().add_recursion_bound("count", 8),
        ).analyze()
        assert deep.wcet_cycles > shallow.wcet_cycles

    def test_challenges_report_mentions_annotation_sourced_bounds(self):
        asm = (
            ".func main params=1\n    mov r4, 0\nloop:\n    add r4, r4, 1\n"
            "    slt r5, r4, r3\n    bt r5, loop\n    halt\n"
        )
        program = parse_assembly(asm)
        annotations = AnnotationSet().add_loop_bound("main", "loop", 20)
        report = WCETAnalyzer(program, simple_scalar(), annotations=annotations).analyze()
        assert any("annotation" in item for item in report.challenges.tier_two)

    def test_text_report_renders(self, counter_loop_program):
        report = WCETAnalyzer(counter_loop_program, leon2_like()).analyze()
        text = report.format_text()
        assert "WCET bound" in text and "Loop bounds" in text

    def test_context_sensitive_callee_is_cheaper_than_context_free(self):
        asm = (
            ".func main\n    mov r3, 4\n    call work\n    halt\n"
            ".func work params=1\n    mov r4, 0\nloop:\n    add r4, r4, 1\n"
            "    slt r5, r4, r3\n    bt r5, loop\n    ret\n"
        )
        program = parse_assembly(asm)
        annotations = AnnotationSet().add_loop_bound("work", "loop", 1000)
        sensitive = WCETAnalyzer(
            program, simple_scalar(), annotations=annotations,
            options=AnalysisOptions(context_sensitive_calls=True),
        ).analyze()
        insensitive = WCETAnalyzer(
            program, simple_scalar(), annotations=annotations,
            options=AnalysisOptions(context_sensitive_calls=False),
        ).analyze()
        assert sensitive.wcet_cycles < insensitive.wcet_cycles

    def test_ilp_backend_simplex_gives_same_bound(self, counter_loop_program):
        scipy_bound = WCETAnalyzer(
            counter_loop_program, simple_scalar(),
            options=AnalysisOptions(ilp_backend="scipy"),
        ).analyze().wcet_cycles
        simplex_bound = WCETAnalyzer(
            counter_loop_program, simple_scalar(),
            options=AnalysisOptions(ilp_backend="simplex"),
        ).analyze().wcet_cycles
        assert scipy_bound == simplex_bound
