"""Integration tests: the workload catalogue and the end-to-end soundness
invariant (static bound vs. measured execution) across workloads and
processor configurations."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.hardware import TraceTimer, hcs12x_like, leon2_like, simple_scalar
from repro.ir import Interpreter
from repro.wcet import WCETAnalyzer
from repro.workloads import catalog, get_workload, workload_names
from repro.workloads import (
    arithmetic_suite,
    error_handling,
    flight_control,
    message_handler,
    pointer_suite,
)


class TestCatalog:
    def test_catalog_is_non_trivial(self):
        assert len(workload_names()) >= 20

    def test_every_workload_compiles(self):
        for name, workload in catalog().items():
            program = workload.program()
            assert program.instruction_count() > 0, name

    def test_every_workload_has_paper_section(self):
        for workload in catalog().values():
            assert workload.paper_section

    def test_get_workload_unknown_name(self):
        with pytest.raises(KeyError):
            get_workload("does-not-exist")

    def test_rule_variants_come_in_pairs(self):
        names = set(workload_names())
        for rule in ("13.4", "13.6", "14.1", "14.4", "14.5"):
            assert f"rule-{rule}-violating" in names
            assert f"rule-{rule}-conforming" in names


SOUND_WORKLOADS = [
    # (name, entry args, initial data)
    ("static-buffer", [], {}),
    ("heap-buffer", [], {}),
    ("rule-13.4-conforming", [], {}),
    ("rule-13.6-conforming", [], {}),
    ("rule-14.5-violating", [], {"samples": [1, 0, 3, 0, 5, 6, 0, 8]}),
    ("rule-14.5-conforming", [], {"samples": [1, 0, 3, 0, 5, 6, 0, 8]}),
    ("iterative-sum", [], {"weights": [1, 2, 3, 4, 5, 6, 7, 8]}),
    ("fixed-arity-sum", [], {"argument_area": [2, 4, 6, 8, 1, 3, 5, 7]}),
    ("branchy-kernel", [], {"values": [3, -2, 7, -1, 5, 0, -4, 9]}),
    ("single-path", [], {"values": [3, -2, 7, -1, 5, 0, -4, 9]}),
]


class TestSoundness:
    @pytest.mark.parametrize("name,args,data", SOUND_WORKLOADS)
    @pytest.mark.parametrize("make_processor", [simple_scalar, leon2_like, hcs12x_like])
    def test_bound_dominates_observation(self, name, args, data, make_processor):
        """BCET bound <= observed cycles <= WCET bound, on every platform."""
        workload = get_workload(name)
        program = workload.program()
        processor = make_processor()
        report = WCETAnalyzer(
            program, processor, annotations=workload.annotation_set()
        ).analyze(entry=workload.entry)
        execution = Interpreter(program).run(workload.entry, args=args, initial_data=data)
        observed = TraceTimer(processor, program).time(execution.trace)
        assert report.bcet_cycles <= observed.cycles <= report.wcet_cycles, name

    def test_message_handler_bound_covers_full_buffer(self):
        """The annotated bound covers the worst input (a full receive buffer)."""
        processor = leon2_like()
        program = message_handler.program()
        report = WCETAnalyzer(
            program, processor, annotations=message_handler.annotations()
        ).analyze(entry="handle_message")
        execution = Interpreter(program).run(
            "handle_message",
            args=[1, 0, message_handler.BUFFER_WORDS],
            initial_data={"rx_buffer": list(range(message_handler.BUFFER_WORDS))},
        )
        observed = TraceTimer(processor, program).time(execution.trace)
        assert observed.cycles <= report.wcet_cycles

    def test_flight_control_mode_bound_covers_mode_execution(self):
        processor = leon2_like()
        program = flight_control.program()
        analyzer = WCETAnalyzer(program, processor, annotations=flight_control.annotations())
        ground_report = analyzer.analyze(mode="ground")
        execution = Interpreter(program).run(initial_data={"operating_mode": [0]})
        observed = TraceTimer(processor, program).time(execution.trace)
        assert observed.cycles <= ground_report.wcet_cycles

    def test_error_monitor_scenario_bound_covers_single_fault_run(self):
        processor = leon2_like()
        program = error_handling.program()
        analyzer = WCETAnalyzer(program, processor, annotations=error_handling.annotations())
        report = analyzer.analyze(entry="monitor", error_scenario="single_fault")
        execution = Interpreter(program).run(
            "monitor",
            initial_data={
                "sensor_value": [0, 0, 0, 10],
                "limit_low": [-5, 0, 0, 0],
                "limit_high": [0, 5, 5, 0],
            },
        )
        observed = TraceTimer(processor, program).time(execution.trace)
        assert observed.cycles <= report.wcet_cycles

    def test_ldivmod_bound_covers_directed_worst_case_run(self):
        """The annotated worst-case bound covers even the nastiest operands."""
        processor = hcs12x_like()
        program = arithmetic_suite.ldivmod_program()
        report = WCETAnalyzer(
            program, processor, annotations=arithmetic_suite.ldivmod_annotations()
        ).analyze(entry="ldivmod")
        execution = Interpreter(program, max_steps=20_000_000).run(
            "ldivmod", args=[0xFFFF_FFFF, 0x0001_0000]
        )
        observed = TraceTimer(processor, program).time(execution.trace)
        assert execution.return_value == 0xFFFF_FFFF // 0x0001_0000
        assert observed.cycles <= report.wcet_cycles

    def test_dispatch_needs_and_uses_call_target_hints(self):
        program = pointer_suite.dispatch_program()
        processor = simple_scalar()
        with pytest.raises(ReproError):
            WCETAnalyzer(program, processor).analyze()
        annotations = pointer_suite.dispatch_annotations(program)
        report = WCETAnalyzer(program, processor, annotations=annotations).analyze()
        # The indirect call is charged with the more expensive handler.
        slow = report.functions["handle_slow"].wcet_cycles
        fast = report.functions["handle_fast"].wcet_cycles
        assert slow > fast
        assert report.wcet_cycles >= slow
